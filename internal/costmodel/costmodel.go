// Package costmodel defines the platform profiles (paper Table I) and the
// analytic cost model the discrete-event simulator charges virtual time
// with. The model is calibrated against the paper's reported measurements:
//
//   - Haswell: computing a 12,500-point partition takes ≈21µs on one core;
//     a 78,125-point partition ≈99µs; task durations 32µs–1.3ms over the
//     20k–1M flat region (Sec. IV-A, IV-C).
//   - Xeon Phi: a 12,500-point partition takes ≈1.1ms on one core; task
//     durations 1.8–50ms over 20k–1M (Sec. IV-A, IV-C).
//   - Idle-rate reaches ≈90% for very fine grain (160-point partitions) and
//     rises again for very coarse grain due to starvation (Fig. 4, 5).
//   - Wait time (work-time inflation) grows with both core count and
//     partition size (Fig. 6) and is slightly negative for very coarse
//     tasks, where one core re-streams data that a full machine keeps
//     distributed across its caches (Sec. IV-C).
//
// # Task-duration model
//
// The virtual execution time of one stencil task over `points` grid points
// when `active` tasks run concurrently on a machine with `cores` cores is
//
//	exec(points, active) = points · p(points) · (1 + W·(active−1))
//	                     + C · capFrac(points) · points · PerPointNs / cores
//
// with
//
//	p(points)  = PerPointNs · (1 + SmallTaskPenalty·Pivot/(points+Pivot))
//	capFrac(p) = max(0, 1 − SharedCacheBytes/(points·BytesPerPoint))
//
// p models per-point cost including the small-task inefficiency (loop setup,
// vector warm-up) that makes tiny partitions cost more per point; the W term
// is memory-contention-driven work-time inflation (the paper's wait time) —
// it is per *byte*, so the per-task wait grows linearly with partition size
// (Fig. 6) while the per-point cost is size-independent, which preserves the
// fine-grain wall at every problem scale; the C term is the cold-capacity
// penalty a single core pays to re-stream a partition exceeding the shared
// cache — dividing by the core count is what makes the wait-time metric go
// negative for very coarse tasks, exactly as observed in the paper.
//
// # Scheduling-cost model
//
// Queue and task-management operations cost their base time multiplied by a
// contention factor (1 + QContention·(cores−1)), reflecting allocator and
// queue contention when many workers schedule simultaneously.
package costmodel

import (
	"fmt"
	"math"
)

// Profile is one experimental platform: the hardware description from
// Table I plus the calibrated cost-model constants.
type Profile struct {
	// Hardware description (Table I).
	Name          string  // canonical lower-case id, e.g. "haswell"
	Processor     string  // marketing name
	ClockGHz      float64 // base clock
	TurboGHz      float64 // max turbo (0 if none)
	Microarch     string
	HWThreads     int // hardware threads per core (paper deactivates >1 on Xeons)
	Cores         int
	NUMADomains   int
	L1KB          int     // per-core L1 data
	L2KB          int     // per-core L2
	SharedCacheMB float64 // shared LLC (0 on Xeon Phi)
	RAMGB         int

	// Benchmark scale used by the paper on this platform.
	TimeSteps int // 50 on the Xeons, 5 on the Xeon Phi

	// Energy model: static per-core power while the runtime holds the core
	// (parked or searching), and the additional dynamic power while a core
	// executes task work. Used by the simulator's energy accounting and the
	// throttling study (Porterfield et al. report adaptive scheduling "can
	// improve performance and save energy", Sec. V).
	IdleWattsPerCore   float64
	ActiveWattsPerCore float64

	// Compute cost model.
	PerPointNs       float64 // asymptotic per-grid-point compute time
	SmallTaskPenalty float64 // extra per-point cost factor for tiny tasks
	PivotPoints      float64 // partition size where the small-task penalty halves
	WaitFactor       float64 // per-point work-time inflation per additional active task
	ColdFactor       float64 // single-core capacity-miss penalty factor
	BytesPerPoint    float64 // resident bytes per grid point

	// Scheduling cost model (virtual nanoseconds, before contention).
	SpawnNs       float64 // create + enqueue one staged task
	ConvertNs     float64 // staged → pending conversion
	PopNs         float64 // successful pending-queue pop
	MissNs        float64 // failed queue probe
	StealLocalNs  float64 // extra cost of a same-NUMA steal
	StealRemoteNs float64 // extra cost of a cross-NUMA steal
	DispatchNs    float64 // context switch into a task phase
	WakeNs        float64 // waking a parked worker
	BackoffNs     float64 // initial idle re-probe interval
	BackoffMaxNs  float64 // maximum idle re-probe interval
	QContention   float64 // per-extra-core multiplier on scheduling ops
}

// PerPointEff returns p(points): the effective per-point compute cost
// including the small-task penalty.
func (p *Profile) PerPointEff(points int) float64 {
	return p.PerPointNs * (1 + p.SmallTaskPenalty*p.PivotPoints/(float64(points)+p.PivotPoints))
}

// CapacityFrac returns the fraction of a partition's working set that
// exceeds the shared cache.
func (p *Profile) CapacityFrac(points int) float64 {
	bytes := float64(points) * p.BytesPerPoint
	cache := p.SharedCacheMB * 1024 * 1024
	if cache <= 0 {
		// No shared LLC (Xeon Phi): use the aggregate of per-core L2.
		cache = float64(p.L2KB*p.Cores) * 1024
	}
	if bytes <= cache {
		return 0
	}
	return 1 - cache/bytes
}

// TaskExecNs returns the virtual execution time of one stencil task over
// `points` grid points with `active` concurrently-active tasks, on a run
// that uses `cores` cores (the cold-penalty divisor). active and cores are
// clamped to >= 1.
func (p *Profile) TaskExecNs(points, active, cores int) float64 {
	if active < 1 {
		active = 1
	}
	if cores < 1 {
		cores = 1
	}
	base := float64(points) * p.PerPointEff(points)
	infl := 1 + p.WaitFactor*float64(active-1)
	cold := p.ColdFactor * p.CapacityFrac(points) * float64(points) * p.PerPointNs / float64(cores)
	return base*infl + cold
}

// Contention returns the multiplier applied to scheduling operations when
// `cores` workers share the scheduler.
func (p *Profile) Contention(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	return 1 + p.QContention*float64(cores-1)
}

// OpNs returns a scheduling operation's virtual cost under contention.
func (p *Profile) OpNs(baseNs float64, cores int) float64 {
	return baseNs * p.Contention(cores)
}

// Validate reports the first structural problem with the profile, or nil.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("costmodel: profile has no name")
	case p.Cores < 1:
		return fmt.Errorf("costmodel: %s: Cores = %d", p.Name, p.Cores)
	case p.NUMADomains < 1 || p.NUMADomains > p.Cores:
		return fmt.Errorf("costmodel: %s: NUMADomains = %d", p.Name, p.NUMADomains)
	case p.TimeSteps < 1:
		return fmt.Errorf("costmodel: %s: TimeSteps = %d", p.Name, p.TimeSteps)
	case p.PerPointNs <= 0:
		return fmt.Errorf("costmodel: %s: PerPointNs = %v", p.Name, p.PerPointNs)
	case p.BytesPerPoint <= 0:
		return fmt.Errorf("costmodel: %s: BytesPerPoint = %v", p.Name, p.BytesPerPoint)
	case p.SpawnNs < 0 || p.ConvertNs < 0 || p.PopNs < 0 || p.MissNs < 0:
		return fmt.Errorf("costmodel: %s: negative scheduling cost", p.Name)
	case p.BackoffNs <= 0 || p.BackoffMaxNs < p.BackoffNs:
		return fmt.Errorf("costmodel: %s: backoff window [%v,%v]", p.Name, p.BackoffNs, p.BackoffMaxNs)
	case math.IsNaN(p.WaitFactor) || p.WaitFactor < 0:
		return fmt.Errorf("costmodel: %s: WaitFactor = %v", p.Name, p.WaitFactor)
	case p.IdleWattsPerCore < 0 || p.ActiveWattsPerCore < p.IdleWattsPerCore:
		return fmt.Errorf("costmodel: %s: watts idle=%v active=%v", p.Name,
			p.IdleWattsPerCore, p.ActiveWattsPerCore)
	}
	return nil
}

// EnergyJoules estimates the energy of a run: every held core draws the
// idle power for the whole makespan, plus the active-idle delta for the
// time it spends executing task work.
func (p *Profile) EnergyJoules(makespanNs, execTotalNs float64, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	static := p.IdleWattsPerCore * float64(cores) * makespanNs / 1e9
	dynamic := (p.ActiveWattsPerCore - p.IdleWattsPerCore) * execTotalNs / 1e9
	return static + dynamic
}

// sharedXeonScheduling fills the scheduling costs common to the three
// out-of-order Xeon nodes, scaled by a relative speed factor.
func sharedXeonScheduling(p *Profile, speed float64) {
	p.SpawnNs = 450 / speed
	p.ConvertNs = 180 / speed
	p.PopNs = 90 / speed
	p.MissNs = 45 / speed
	p.StealLocalNs = 300 / speed
	p.StealRemoteNs = 700 / speed
	p.DispatchNs = 120 / speed
	p.WakeNs = 1000 / speed
	p.BackoffNs = 5e3
	p.BackoffMaxNs = 100e3
	p.QContention = 0.12
}

// SandyBridge returns the 16-core Sandy Bridge node (Intel Xeon E5-2690).
func SandyBridge() *Profile {
	p := &Profile{
		Name: "sandybridge", Processor: "Intel Xeon E5 2690",
		ClockGHz: 2.9, TurboGHz: 3.8, Microarch: "Sandy Bridge (SB)",
		HWThreads: 2, Cores: 16, NUMADomains: 2,
		L1KB: 32, L2KB: 256, SharedCacheMB: 20, RAMGB: 64,
		TimeSteps:  50,
		PerPointNs: 1.20, SmallTaskPenalty: 0.8, PivotPoints: 10e3,
		WaitFactor: 0.22, ColdFactor: 0.6, BytesPerPoint: 8,
		IdleWattsPerCore: 1.5, ActiveWattsPerCore: 8.4, // 135W TDP / 16 cores
	}
	sharedXeonScheduling(p, 1.05)
	return p
}

// IvyBridge returns the 20-core Ivy Bridge node (Intel Xeon E5-2679 v2).
func IvyBridge() *Profile {
	p := &Profile{
		Name: "ivybridge", Processor: "Intel Xeon E5-2679 v2",
		ClockGHz: 2.3, TurboGHz: 3.3, Microarch: "Ivy Bridge (IB)",
		HWThreads: 2, Cores: 20, NUMADomains: 2,
		L1KB: 32, L2KB: 256, SharedCacheMB: 35, RAMGB: 128,
		TimeSteps:  50,
		PerPointNs: 1.30, SmallTaskPenalty: 0.78, PivotPoints: 10e3,
		WaitFactor: 0.21, ColdFactor: 0.6, BytesPerPoint: 8,
		IdleWattsPerCore: 1.2, ActiveWattsPerCore: 5.8, // 115W TDP / 20 cores
	}
	sharedXeonScheduling(p, 1.0)
	return p
}

// Haswell returns the 28-core Haswell node (Intel Xeon E5-2695 v3).
func Haswell() *Profile {
	p := &Profile{
		Name: "haswell", Processor: "Intel Xeon E5-2695 v3",
		ClockGHz: 2.3, TurboGHz: 3.3, Microarch: "Haswell (HW)",
		HWThreads: 2, Cores: 28, NUMADomains: 2,
		L1KB: 32, L2KB: 256, SharedCacheMB: 35, RAMGB: 128,
		TimeSteps:  50,
		PerPointNs: 1.25, SmallTaskPenalty: 0.77, PivotPoints: 10e3,
		WaitFactor: 0.20, ColdFactor: 0.6, BytesPerPoint: 8,
		IdleWattsPerCore: 1.0, ActiveWattsPerCore: 4.3, // 120W TDP / 28 cores
	}
	sharedXeonScheduling(p, 1.0)
	return p
}

// XeonPhi returns the 61-core Xeon Phi coprocessor (experiments use up to
// 60 cores, one thread per core, as in the paper).
func XeonPhi() *Profile {
	return &Profile{
		Name: "xeonphi", Processor: "Intel Xeon Phi",
		ClockGHz: 1.2, TurboGHz: 0, Microarch: "Xeon Phi",
		HWThreads: 4, Cores: 61, NUMADomains: 1,
		L1KB: 32, L2KB: 512, SharedCacheMB: 0, RAMGB: 8,
		TimeSteps:  5,
		PerPointNs: 50, SmallTaskPenalty: 1.1, PivotPoints: 25e3,
		WaitFactor: 0.10, ColdFactor: 0.5, BytesPerPoint: 8,
		IdleWattsPerCore: 1.5, ActiveWattsPerCore: 4.9, // 300W TDP / 61 cores
		// Scheduling on the in-order 1.2GHz K1OM is an order of magnitude
		// costlier than on the Xeons; at fine grain task creation itself
		// becomes the bottleneck (Fig. 3d's ~60s left edge).
		SpawnNs: 20000, ConvertNs: 8000, PopNs: 4000, MissNs: 2000,
		StealLocalNs: 12000, StealRemoteNs: 12000, DispatchNs: 6000, WakeNs: 30000,
		BackoffNs: 50e3, BackoffMaxNs: 800e3, QContention: 0.06,
	}
}

// All returns every platform profile in Table I order.
func All() []*Profile {
	return []*Profile{Haswell(), XeonPhi(), IvyBridge(), SandyBridge()}
}

// ByName resolves a profile by its canonical name.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("costmodel: unknown platform %q (have haswell, xeonphi, ivybridge, sandybridge)", name)
}

// String renders a one-line summary.
func (p *Profile) String() string {
	return fmt.Sprintf("%s: %s, %d cores @ %.1f GHz, %d NUMA domains",
		p.Name, p.Processor, p.Cores, p.ClockGHz, p.NUMADomains)
}
