package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeTornFixture builds a journal of n records and returns the directory
// and the tail segment's path plus the byte offset where the final record's
// frame begins.
func writeTornFixture(t *testing.T, n int) (dir, tailPath string, finalOff int64) {
	t.Helper()
	dir = t.TempDir()
	j, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var frames []int
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("torn-matrix-%03d", i))
		frames = append(frames, headerBytes+len(p))
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("fixture spread over %d segments, want 1", len(segs))
	}
	tailPath = segs[0]
	total := int64(0)
	for _, f := range frames[:n-1] {
		total += int64(f)
	}
	return dir, tailPath, total
}

// TestTornWriteMatrix truncates the tail at every byte offset inside the
// final record's frame and asserts recovery stops exactly at the last valid
// LSN — the record before the torn one — counting one truncation each time.
func TestTornWriteMatrix(t *testing.T) {
	const n = 8
	refDir, refTail, finalOff := writeTornFixture(t, n)
	full, err := os.ReadFile(refTail)
	if err != nil {
		t.Fatal(err)
	}
	_ = refDir
	frameLen := int64(len(full)) - finalOff
	if frameLen <= 0 {
		t.Fatalf("final frame length %d", frameLen)
	}

	for cut := int64(0); cut < frameLen; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut-%02d", cut), func(t *testing.T) {
			dir := t.TempDir()
			tail := filepath.Join(dir, filepath.Base(refTail))
			if err := os.WriteFile(tail, full[:finalOff+cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.LastLSN != n-1 {
				t.Fatalf("LastLSN = %d, want %d (torn final record must be dropped)", rec.LastLSN, n-1)
			}
			if len(rec.Records) != n-1 {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), n-1)
			}
			if cut > 0 && rec.TornTruncations != 1 {
				t.Fatalf("TornTruncations = %d, want 1", rec.TornTruncations)
			}
			// Recovery must have truncated the file so a reopened journal
			// appends after the last valid record — and the next append's
			// LSN proves it.
			j, err := Open(dir, Options{Fsync: FsyncNone})
			if err != nil {
				t.Fatal(err)
			}
			lsn, err := j.Append([]byte("after-truncate"))
			if err != nil {
				t.Fatal(err)
			}
			if lsn != n {
				t.Fatalf("post-truncate append lsn = %d, want %d", lsn, n)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornWriteFlippedCRC corrupts the final record's CRC (length intact,
// payload intact) and asserts recovery treats it as torn.
func TestTornWriteFlippedCRC(t *testing.T) {
	const n = 8
	_, refTail, finalOff := writeTornFixture(t, n)
	full, err := os.ReadFile(refTail)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tampered := append([]byte(nil), full...)
	// Bytes 4..8 of the frame are the CRC32C.
	binary.LittleEndian.PutUint32(tampered[finalOff+4:finalOff+8],
		binary.LittleEndian.Uint32(tampered[finalOff+4:finalOff+8])^0xdeadbeef)
	tail := filepath.Join(dir, filepath.Base(refTail))
	if err := os.WriteFile(tail, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastLSN != n-1 || len(rec.Records) != n-1 {
		t.Fatalf("LastLSN = %d with %d records, want %d with %d",
			rec.LastLSN, len(rec.Records), n-1, n-1)
	}
	if rec.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", rec.TornTruncations)
	}
	// The flipped-CRC bytes must be gone from disk after truncation.
	raw, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != finalOff {
		t.Fatalf("tail is %d bytes after truncation, want %d", len(raw), finalOff)
	}
}

// FuzzDecodeRecord throws arbitrary bytes at the frame decoder: it must
// never panic, never over-consume, and must round-trip every payload
// EncodeRecord produces.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(EncodeRecord([]byte("seed")))
	f.Add(EncodeRecord([]byte{0xff}))
	f.Add(append(EncodeRecord([]byte("two")), EncodeRecord([]byte("frames"))...))
	huge := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(huge, 1<<31-1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		if err == nil {
			if n < headerBytes || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if len(payload) != n-headerBytes {
				t.Fatalf("payload %d bytes from a %d-byte frame", len(payload), n)
			}
			// A frame the decoder accepts must re-encode to identical bytes.
			if !bytes.Equal(EncodeRecord(payload), data[:n]) {
				t.Fatal("decode/encode round trip changed the frame")
			}
		}
		// Arbitrary payloads round-trip through the encoder.
		if len(data) > 0 && len(data) <= maxRecordBytes {
			back, n2, err := DecodeRecord(EncodeRecord(data))
			if err != nil || n2 != headerBytes+len(data) || !bytes.Equal(back, data) {
				t.Fatalf("round trip failed: n=%d err=%v", n2, err)
			}
		}
	})
}
