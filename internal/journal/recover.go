package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Record is one replayable log entry.
type Record struct {
	LSN     LSN
	Payload []byte
}

// Recovery is the replayable state of a journal directory: the newest valid
// snapshot (if any) plus every record after it, in LSN order. Restart
// recovery loads Snapshot first, then applies Records — which may overlap
// the snapshot's contents by one in-flight transition, so application must
// be idempotent.
type Recovery struct {
	// SnapshotLSN is the LSN the snapshot covers (0 when Snapshot is nil).
	SnapshotLSN LSN
	// Snapshot is the newest valid snapshot payload, nil if none exists.
	Snapshot []byte
	// Records are the log entries with LSN > SnapshotLSN, in order.
	Records []Record
	// LastLSN is the LSN of the final valid record (or SnapshotLSN when the
	// tail holds nothing newer).
	LastLSN LSN
	// TornTruncations counts torn final records truncated during the scan
	// — at most one per recovery, on the tail segment only.
	TornTruncations int
}

// Recover scans a journal directory, truncates a torn final record at the
// last valid CRC, and returns the snapshot+tail replay set. A missing or
// empty directory recovers to an empty state. Corruption anywhere but the
// tail of the final segment is a hard error: a sealed segment is fsynced at
// rotation, so damage there is not a crash artifact.
func Recover(dir string) (*Recovery, error) {
	st, err := scanDir(dir, true)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{
		SnapshotLSN:     st.snapLSN,
		Snapshot:        st.snapshot,
		LastLSN:         st.lastLSN,
		TornTruncations: st.tornTruncations,
	}
	if rec.LastLSN < rec.SnapshotLSN {
		// A snapshot may cover records whose segments were compacted away.
		rec.LastLSN = rec.SnapshotLSN
	}
	for _, seg := range st.segments {
		lsn := seg.firstLSN
		for _, payload := range seg.payloads {
			if lsn > st.snapLSN {
				rec.Records = append(rec.Records, Record{LSN: lsn, Payload: payload})
			}
			lsn++
		}
	}
	return rec, nil
}

// segmentMeta is one scanned segment file.
type segmentMeta struct {
	name       string
	firstLSN   LSN
	payloads   [][]byte // valid record payloads, in order (nil when metadata-only)
	validBytes int64    // bytes up to and including the last valid record
}

// dirState is the outcome of one directory scan.
type dirState struct {
	segments        []segmentMeta
	snapLSN         LSN
	snapshot        []byte
	lastLSN         LSN
	tornTruncations int
}

func sortSegments(segs []segmentMeta) {
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstLSN < segs[k].firstLSN })
}

// scanDir reads every snapshot and segment in dir. When truncateTorn is
// set, a torn tail on the final segment is truncated in place so a
// subsequent Open appends after the last valid record.
func scanDir(dir string, truncateTorn bool) (*dirState, error) {
	st := &dirState{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var snaps []LSN
	for _, e := range entries {
		if lsn, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, lsn)
		}
		if lsn, ok := parseSegmentName(e.Name()); ok {
			st.segments = append(st.segments, segmentMeta{name: e.Name(), firstLSN: lsn})
		}
	}
	sortSegments(st.segments)
	sort.Slice(snaps, func(i, k int) bool { return snaps[i] > snaps[k] })

	// Newest decodable snapshot wins; a corrupt one (crash mid-rename on a
	// filesystem without atomic rename) falls back to the next older.
	for _, lsn := range snaps {
		raw, err := os.ReadFile(filepath.Join(dir, snapshotName(lsn)))
		if err != nil {
			continue
		}
		payload, n, err := DecodeRecord(raw)
		if err != nil || n != len(raw) {
			continue
		}
		st.snapLSN = lsn
		st.snapshot = append([]byte(nil), payload...)
		break
	}

	for i := range st.segments {
		seg := &st.segments[i]
		isTail := i == len(st.segments)-1
		raw, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		off := 0
		for off < len(raw) {
			payload, n, err := DecodeRecord(raw[off:])
			if err != nil {
				if !isTail {
					return nil, fmt.Errorf("journal: segment %s corrupt at offset %d (not the tail): %v",
						seg.name, off, err)
				}
				st.tornTruncations++
				if truncateTorn {
					if terr := os.Truncate(filepath.Join(dir, seg.name), int64(off)); terr != nil {
						return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", seg.name, terr)
					}
				}
				break
			}
			seg.payloads = append(seg.payloads, append([]byte(nil), payload...))
			off += n
		}
		seg.validBytes = int64(off)
		// Gapless chain check: this segment's first LSN must follow the
		// previous segment's last record exactly.
		if i > 0 {
			prev := st.segments[i-1]
			want := prev.firstLSN + LSN(len(prev.payloads))
			if seg.firstLSN != want {
				return nil, fmt.Errorf("journal: segment %s starts at LSN %d, want %d (gap or overlap)",
					seg.name, seg.firstLSN, want)
			}
		}
		if n := len(seg.payloads); n > 0 {
			st.lastLSN = seg.firstLSN + LSN(n) - 1
		} else if seg.firstLSN > 0 {
			st.lastLSN = seg.firstLSN - 1
		}
	}
	if st.lastLSN < st.snapLSN {
		st.lastLSN = st.snapLSN
	}
	return st, nil
}
