// Package journal is a durable write-ahead log for job-lifecycle records:
// length+CRC32C framed records in segmented append-only files, monotonic
// LSNs, snapshot compaction, and crash recovery that tolerates a torn final
// record.
//
// The fsync policy is the durability edition of the paper's granularity
// trade-off (Eq. 1): an fsync per record is the "tiny task" regime — the
// per-record overhead (a device flush) swamps the payload and throughput
// collapses. The interval policy batches every record appended inside one
// commit window into a single fsync (group commit), exactly the way
// SpawnBatch amortizes one wake over a batch of spawns: the overhead is paid
// once per group, not once per record.
//
//	always    fsync inside every Append; durable on return
//	interval  Append returns after the buffered write; a group-commit
//	          syncer fsyncs every FsyncInterval, covering every record
//	          appended since the previous flush (bounded-loss window)
//	none      never fsync (the OS flushes); for benchmarking the floor
//	          and for tests on tmpfs
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when appends are flushed to stable storage.
type FsyncPolicy string

// The three fsync policies.
const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNone     FsyncPolicy = "none"
)

// ParseFsyncPolicy validates a policy name.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNone:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("journal: unknown fsync policy %q (want always, interval, none)", s)
}

// LSN is a log sequence number: 1-based, monotonic, gapless. A record's LSN
// is implicit in its position — segment files are named by the LSN of their
// first record, so replay reconstructs every LSN without storing them.
type LSN uint64

// Record framing: a 4-byte little-endian payload length, a 4-byte CRC32C
// (Castagnoli) of the payload, then the payload. maxRecordBytes bounds a
// single record so a garbage length field cannot drive a giant allocation
// during recovery.
const (
	headerBytes    = 8
	maxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrKilled is returned by appends and syncs after Kill — the test-only
// crash switch that freezes the journal's durable state mid-run.
var ErrKilled = errors.New("journal: killed (simulated crash)")

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Options parameterizes Open.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// reaches this size (default 4 MiB). Sealed segments are fsynced at
	// rotation (except under FsyncNone), so only the tail segment can ever
	// be torn.
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit window of the interval policy
	// (default 2ms): every record appended within one window shares one
	// fsync.
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 2 * time.Millisecond
	}
	return o
}

// Journal is an open write-ahead log. All methods are safe for concurrent
// use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // tail segment
	segStart LSN      // first LSN of the tail segment
	segSize  int64
	next     LSN // next LSN to assign
	appended LSN // last appended LSN
	durable  LSN // last LSN covered by an fsync
	snapLSN  LSN // LSN of the newest snapshot on disk
	closed   bool

	killed atomic.Bool

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	// Stats, exported for telemetry counters.
	appends        atomic.Int64
	appendsBatched atomic.Int64 // records that arrived via AppendBatch
	fsyncs         atomic.Int64
	lastGroup      atomic.Int64 // records covered by the most recent group commit
	torn           atomic.Int64 // torn-tail truncations performed at Open
}

// Open creates or resumes a journal in dir. An existing log is scanned to
// the last valid record (a torn tail is truncated and counted) and appends
// continue from there; recovery of the *contents* is Recover's job and
// should run before Open.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := scanDir(dir, true)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		opts:     opts,
		next:     st.lastLSN + 1,
		appended: st.lastLSN,
		durable:  st.lastLSN,
		snapLSN:  st.snapLSN,
		stopSync: make(chan struct{}),
	}
	j.torn.Store(int64(st.tornTruncations))
	if len(st.segments) == 0 {
		if err := j.openSegmentLocked(j.next); err != nil {
			return nil, err
		}
	} else {
		tail := st.segments[len(st.segments)-1]
		f, err := os.OpenFile(filepath.Join(dir, tail.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		j.f = f
		j.segStart = tail.firstLSN
		j.segSize = tail.validBytes
	}
	if opts.Fsync == FsyncInterval {
		j.syncWG.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

// openSegmentLocked creates the segment whose first record will carry
// firstLSN. Caller holds j.mu (or is in Open before the journal escapes).
func (j *Journal) openSegmentLocked(firstLSN LSN) error {
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(firstLSN)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.segStart = firstLSN
	j.segSize = 0
	return syncDir(j.dir)
}

// Append writes one framed record and returns its LSN. Durability on return
// follows the fsync policy: guaranteed under always, within FsyncInterval
// under interval, at the OS's leisure under none.
func (j *Journal) Append(payload []byte) (LSN, error) {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("journal: record size %d out of (0,%d]", len(payload), maxRecordBytes)
	}
	if j.killed.Load() {
		return 0, ErrKilled
	}
	frame := EncodeRecord(payload)

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if j.killed.Load() { // re-check under the lock; Kill wins races
		j.mu.Unlock()
		return 0, ErrKilled
	}
	if _, err := j.f.Write(frame); err != nil {
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: %w", err)
	}
	lsn := j.next
	j.next++
	j.appended = lsn
	j.segSize += int64(len(frame))
	j.appends.Add(1)

	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("journal: %w", err)
		}
		j.fsyncs.Add(1)
		j.lastGroup.Store(int64(lsn - j.durable))
		j.durable = lsn
	}
	var rotateErr error
	if j.segSize >= j.opts.SegmentBytes {
		rotateErr = j.rotateLocked()
	}
	j.mu.Unlock()
	if rotateErr != nil {
		return lsn, rotateErr
	}
	return lsn, nil
}

// AppendBatch writes a batch of framed records under one lock acquisition
// and returns the LSN of the first. Under the always policy the whole batch
// shares a single fsync — the group-commit amortization of SpawnBatch
// applied to durability: one device flush per batch instead of one per
// record. Under interval the batch lands inside one commit window. LSNs are
// assigned contiguously, so record i carries first+i.
func (j *Journal) AppendBatch(payloads [][]byte) (LSN, error) {
	if len(payloads) == 0 {
		return 0, fmt.Errorf("journal: empty batch")
	}
	total := 0
	for _, p := range payloads {
		if len(p) == 0 || len(p) > maxRecordBytes {
			return 0, fmt.Errorf("journal: record size %d out of (0,%d]", len(p), maxRecordBytes)
		}
		total += headerBytes + len(p)
	}
	if j.killed.Load() {
		return 0, ErrKilled
	}
	// One contiguous frame buffer: the batch reaches the kernel as a single
	// write, so a torn tail can only ever split the batch at a record
	// boundary plus at most one torn record — exactly what recovery handles.
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		buf = append(buf, EncodeRecord(p)...)
	}

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if j.killed.Load() { // re-check under the lock; Kill wins races
		j.mu.Unlock()
		return 0, ErrKilled
	}
	if _, err := j.f.Write(buf); err != nil {
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: %w", err)
	}
	first := j.next
	j.next += LSN(len(payloads))
	j.appended = j.next - 1
	j.segSize += int64(total)
	j.appends.Add(int64(len(payloads)))
	j.appendsBatched.Add(int64(len(payloads)))

	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("journal: %w", err)
		}
		j.fsyncs.Add(1)
		j.lastGroup.Store(int64(j.appended - j.durable))
		j.durable = j.appended
	}
	var rotateErr error
	if j.segSize >= j.opts.SegmentBytes {
		rotateErr = j.rotateLocked()
	}
	j.mu.Unlock()
	if rotateErr != nil {
		return first, rotateErr
	}
	return first, nil
}

// rotateLocked seals the tail segment (fsync unless policy none) and opens a
// fresh one. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if j.opts.Fsync != FsyncNone {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: seal: %w", err)
		}
		j.fsyncs.Add(1)
		if j.appended > j.durable {
			j.lastGroup.Store(int64(j.appended - j.durable))
			j.durable = j.appended
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: seal: %w", err)
	}
	return j.openSegmentLocked(j.next)
}

// syncLoop is the interval policy's group-commit syncer: one fsync per
// window covers every record appended since the last one.
func (j *Journal) syncLoop() {
	defer j.syncWG.Done()
	tick := time.NewTicker(j.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-tick.C:
			j.mu.Lock()
			if !j.closed && !j.killed.Load() && j.appended > j.durable {
				if err := j.f.Sync(); err == nil {
					j.fsyncs.Add(1)
					j.lastGroup.Store(int64(j.appended - j.durable))
					j.durable = j.appended
				}
			}
			j.mu.Unlock()
		}
	}
}

// Sync forces an fsync of the tail segment regardless of policy — the drain
// path calls it so a graceful shutdown leaves nothing in the page cache.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.killed.Load() {
		return ErrKilled
	}
	if j.closed {
		return ErrClosed
	}
	if j.appended > j.durable {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.fsyncs.Add(1)
		j.lastGroup.Store(int64(j.appended - j.durable))
		j.durable = j.appended
	}
	return nil
}

// Snapshot durably writes a full-state snapshot covering every record
// appended so far, then deletes segments (and older snapshots) wholly below
// it. Replay after a snapshot starts from its payload and applies only
// records with greater LSNs, so replaying a record the snapshot already
// includes must be idempotent for the caller.
func (j *Journal) Snapshot(state []byte) error {
	if len(state) > maxRecordBytes {
		return fmt.Errorf("journal: snapshot size %d exceeds %d", len(state), maxRecordBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed.Load() {
		return ErrKilled
	}
	if j.closed {
		return ErrClosed
	}
	// The tail must be durable before the snapshot claims to cover it —
	// otherwise a crash could leave a snapshot at LSN n with records ≤ n
	// torn away beneath it.
	if err := j.syncLocked(); err != nil {
		return err
	}
	cur := j.appended
	if err := writeSnapshotFile(j.dir, cur, state); err != nil {
		return err
	}
	j.snapLSN = cur
	j.compactLocked()
	return nil
}

// SnapshotLSN returns the LSN of the newest snapshot on disk (0 if none).
func (j *Journal) SnapshotLSN() LSN {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapLSN
}

// compactLocked deletes snapshots older than the newest and segments whose
// every record is covered by it. The tail segment always survives. Caller
// holds j.mu.
func (j *Journal) compactLocked() {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	var segs []segmentMeta
	for _, e := range entries {
		if lsn, ok := parseSnapshotName(e.Name()); ok && lsn < j.snapLSN {
			_ = os.Remove(filepath.Join(j.dir, e.Name()))
		}
		if lsn, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentMeta{name: e.Name(), firstLSN: lsn})
		}
	}
	sortSegments(segs)
	// Segment i covers [firstLSN_i, firstLSN_{i+1}-1]; deletable when that
	// whole range is ≤ snapLSN.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstLSN-1 <= j.snapLSN && segs[i].name != segmentName(j.segStart) {
			_ = os.Remove(filepath.Join(j.dir, segs[i].name))
		}
	}
	_ = syncDir(j.dir)
}

// Kill simulates a crash for tests: every later append, sync, and snapshot
// fails with ErrKilled, freezing the on-disk state at this instant — the
// moment the SIGKILL landed. Unlike Close it never flushes.
func (j *Journal) Kill() {
	if !j.killed.CompareAndSwap(false, true) {
		return
	}
	close(j.stopSync)
	j.syncWG.Wait()
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		_ = j.f.Close()
	}
	j.mu.Unlock()
}

// Killed reports whether the crash switch fired.
func (j *Journal) Killed() bool { return j.killed.Load() }

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	if j.killed.Load() {
		return ErrKilled
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	if j.opts.Fsync == FsyncInterval {
		close(j.stopSync)
		j.syncWG.Wait()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LastLSN returns the most recently appended LSN.
func (j *Journal) LastLSN() LSN {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Appends returns how many records have been appended.
func (j *Journal) Appends() int64 { return j.appends.Load() }

// AppendsBatched returns how many records arrived via AppendBatch — records
// whose frame write (and, under always, whose fsync) was shared with the
// rest of their batch.
func (j *Journal) AppendsBatched() int64 { return j.appendsBatched.Load() }

// Fsyncs returns how many fsyncs have been issued.
func (j *Journal) Fsyncs() int64 { return j.fsyncs.Load() }

// LastGroupSize returns how many records the most recent group commit
// covered — the durability edition of the batch size that amortizes Eq. 1
// overhead.
func (j *Journal) LastGroupSize() int64 { return j.lastGroup.Load() }

// TornTruncations returns how many torn tails Open truncated.
func (j *Journal) TornTruncations() int64 { return j.torn.Load() }

// EncodeRecord frames one payload: length, CRC32C, payload.
func EncodeRecord(payload []byte) []byte {
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerBytes:], payload)
	return frame
}

// DecodeRecord parses one frame from the front of b, returning the payload
// and the bytes consumed. A short, oversized, or CRC-mismatched frame
// returns an error — during recovery that marks the torn tail.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < headerBytes {
		return nil, 0, errors.New("journal: short header")
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size == 0 || size > maxRecordBytes {
		return nil, 0, fmt.Errorf("journal: record length %d out of (0,%d]", size, maxRecordBytes)
	}
	if len(b) < headerBytes+int(size) {
		return nil, 0, errors.New("journal: short payload")
	}
	payload = b[headerBytes : headerBytes+int(size)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errors.New("journal: CRC mismatch")
	}
	return payload, headerBytes + int(size), nil
}

// segmentName renders the file name of the segment whose first record
// carries lsn.
func segmentName(lsn LSN) string { return fmt.Sprintf("wal-%020d.log", lsn) }

// snapshotName renders the file name of the snapshot covering lsn.
func snapshotName(lsn LSN) string { return fmt.Sprintf("snap-%020d.snap", lsn) }

func parseSegmentName(name string) (LSN, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "wal-%020d.log", &n); err != nil || segmentName(LSN(n)) != name {
		return 0, false
	}
	return LSN(n), true
}

func parseSnapshotName(name string) (LSN, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "snap-%020d.snap", &n); err != nil || snapshotName(LSN(n)) != name {
		return 0, false
	}
	return LSN(n), true
}

// writeSnapshotFile durably writes one framed snapshot: temp file, fsync,
// atomic rename, directory fsync.
func writeSnapshotFile(dir string, lsn LSN, state []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(EncodeRecord(state)); err != nil {
		cleanup()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(lsn))); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort; some filesystems refuse directory opens
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
