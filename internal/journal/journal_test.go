package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openT opens a journal with test-friendly options, failing the test on
// error.
func openT(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		lsn, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := LSN(i + 1); lsn != got {
			t.Fatalf("append %d: lsn = %d, want %d", i, lsn, got)
		}
		want = append(want, p)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || rec.SnapshotLSN != 0 {
		t.Fatalf("unexpected snapshot at LSN %d", rec.SnapshotLSN)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.LSN != LSN(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: lsn %d payload %q, want lsn %d payload %q",
				i, r.LSN, r.Payload, i+1, want[i])
		}
	}
	if rec.LastLSN != 100 {
		t.Fatalf("LastLSN = %d, want 100", rec.LastLSN)
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	var want [][]byte
	batch := make([][]byte, 0, 8)
	for i := 0; i < 24; i++ {
		p := []byte(fmt.Sprintf("batched-%03d", i))
		batch = append(batch, p)
		want = append(want, p)
		if len(batch) == 8 {
			first, err := j.AppendBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if wantFirst := LSN(i + 1 - 7); first != wantFirst {
				t.Fatalf("batch first LSN = %d, want %d", first, wantFirst)
			}
			batch = batch[:0]
		}
	}
	if got := j.AppendsBatched(); got != 24 {
		t.Fatalf("AppendsBatched = %d, want 24", got)
	}
	if got := j.Appends(); got != 24 {
		t.Fatalf("Appends = %d, want 24", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.LSN != LSN(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: lsn %d payload %q, want lsn %d payload %q",
				i, r.LSN, r.Payload, i+1, want[i])
		}
	}
}

func TestAppendBatchFsyncAlwaysGroupsOneFsync(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncAlways})
	batch := make([][]byte, 64)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("grouped-%02d", i))
	}
	before := j.Fsyncs()
	if _, err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs() - before; got != 1 {
		t.Fatalf("batch of 64 under always issued %d fsyncs, want 1", got)
	}
	if got := j.LastGroupSize(); got != 64 {
		t.Fatalf("LastGroupSize = %d, want 64 (the whole batch in one group)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchRejectsBadBatches(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	defer j.Close()
	if _, err := j.AppendBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := j.AppendBatch([][]byte{[]byte("ok"), nil}); err == nil {
		t.Fatal("batch with an empty record accepted")
	}
	// A rejected batch must not burn LSNs or count appends.
	if got := j.Appends(); got != 0 {
		t.Fatalf("Appends = %d after rejected batches, want 0", got)
	}
	if lsn, err := j.Append([]byte("after")); err != nil || lsn != 1 {
		t.Fatalf("append after rejected batches: lsn %d err %v, want 1 nil", lsn, err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	for i := 0; i < 10; i++ {
		if _, err := j.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j = openT(t, dir, Options{Fsync: FsyncNone})
	lsn, err := j.Append([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-reopen lsn = %d, want 11", lsn)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 11 {
		t.Fatalf("recovered %d records, want 11", len(rec.Records))
	}
}

func TestSegmentRotationAndChain(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	j := openT(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rotate-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d: lsn %d, want %d (chain broken)", i, r.LSN, i+1)
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	for i := 0; i < 40; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("pre-snap-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("state@40")); err != nil {
		t.Fatal(err)
	}
	if j.SnapshotLSN() != 40 {
		t.Fatalf("SnapshotLSN = %d, want 40", j.SnapshotLSN())
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) > 2 {
		t.Fatalf("compaction left %d segments (%v), want at most the tail and its predecessor", len(segs), segs)
	}
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("post-snap-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state@40" || rec.SnapshotLSN != 40 {
		t.Fatalf("snapshot = %q at %d, want state@40 at 40", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replay tail has %d records, want 5 (only post-snapshot)", len(rec.Records))
	}
	if rec.Records[0].LSN != 41 {
		t.Fatalf("first replay LSN = %d, want 41", rec.Records[0].LSN)
	}
}

func TestSnapshotSupersedesOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	if _, err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("compaction kept %d snapshots, want 1", len(snaps))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "s2" || len(rec.Records) != 0 {
		t.Fatalf("recovered snapshot %q with %d tail records, want s2 with 0", rec.Snapshot, len(rec.Records))
	}
}

func TestGroupCommitBatchesAppenders(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	const appenders, perAppender = 8, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("g-%d-%d", a, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	appends, fsyncs := j.Appends(), j.Fsyncs()
	if appends != appenders*perAppender {
		t.Fatalf("appends = %d, want %d", appends, appenders*perAppender)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	if fsyncs >= appends {
		t.Fatalf("fsyncs = %d for %d appends: group commit did not batch", fsyncs, appends)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != appenders*perAppender {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), appenders*perAppender)
	}
}

func TestFsyncAlwaysSyncsEveryAppend(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		if _, err := j.Append([]byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	if j.Fsyncs() < 10 {
		t.Fatalf("fsyncs = %d, want ≥ 10 under always", j.Fsyncs())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestKillFreezesDurableState(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone})
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte("kept")); err != nil {
			t.Fatal(err)
		}
	}
	j.Kill()
	if _, err := j.Append([]byte("dropped")); err != ErrKilled {
		t.Fatalf("append after Kill: err = %v, want ErrKilled", err)
	}
	if err := j.Sync(); err != ErrKilled {
		t.Fatalf("sync after Kill: err = %v, want ErrKilled", err)
	}
	if err := j.Snapshot([]byte("x")); err != ErrKilled {
		t.Fatalf("snapshot after Kill: err = %v, want ErrKilled", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 pre-kill ones", len(rec.Records))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, good := range []string{"always", "interval", "none"} {
		if _, err := ParseFsyncPolicy(good); err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", good, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy(sometimes) accepted")
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	rec, err := Recover(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastLSN != 0 || len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("missing dir recovered non-empty: %+v", rec)
	}
}

func TestCorruptSealedSegmentIsHardError(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("sealed-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(segs))
	}
	// Flip a byte in the FIRST (sealed) segment: that is corruption, not a
	// torn tail, and recovery must refuse rather than silently drop records.
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("Recover accepted a corrupt sealed segment")
	}
}
