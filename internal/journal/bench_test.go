package journal

import (
	"testing"
	"time"
)

// BenchmarkJournalAppend measures append throughput under each fsync policy
// with concurrent appenders (RunParallel), the shape that matters for group
// commit: `interval` must amortize fsyncs across appenders the way adaptive
// grain amortizes per-task overhead, landing near `none`; `always` pays one
// fsync per record and shows the tiny-task collapse.
func BenchmarkJournalAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"none", Options{Fsync: FsyncNone}},
		{"interval-2ms", Options{Fsync: FsyncInterval, FsyncInterval: 2 * time.Millisecond}},
		{"always", Options{Fsync: FsyncAlways}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			j, err := Open(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := j.Append(payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(j.Fsyncs()), "fsyncs")
		})
	}
}
