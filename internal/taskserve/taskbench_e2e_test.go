package taskserve

import (
	"net/http"
	"testing"
)

// TestTaskbenchJobEndToEnd submits a taskbench job with an METG request over
// the HTTP API, long-polls it to completion, and checks the job document
// carries the pattern, the grain that served it, and the METG figures.
func TestTaskbenchJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	spec := JobSpec{
		Kind: KindTaskbench, Size: 16, Steps: 4,
		Pattern: "fft", Grain: 20_000, Metg: true,
	}
	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.Pattern != "fft" {
		t.Fatalf("submit view pattern = %q, want fft", v.Pattern)
	}

	got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s")
	if got.State != JobDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	if got.Pattern != "fft" {
		t.Errorf("job document pattern = %q, want fft", got.Pattern)
	}
	if got.Grain != spec.Grain || got.GrainSource != "request" {
		t.Errorf("grain %d source %q, want %d/request", got.Grain, got.GrainSource, spec.Grain)
	}
	if got.Result == nil {
		t.Fatal("done job carries no result")
	}
	// 16-wide, 4-step grid: 64 tasks regardless of pattern (fft keeps full width).
	if got.Result.Tasks != 64 {
		t.Errorf("tasks = %d, want 64", got.Result.Tasks)
	}
	if got.Result.Pattern != "fft" {
		t.Errorf("result pattern = %q, want fft", got.Result.Pattern)
	}
	if got.Result.Efficiency < 0 || got.Result.Efficiency > 1 {
		t.Errorf("efficiency %v out of [0,1]", got.Result.Efficiency)
	}
	if got.Result.MetgNs <= 0 {
		t.Errorf("metg_ns = %v, want > 0 (metg=true was requested)", got.Result.MetgNs)
	}
	// MetgFound may be false on a loaded host; the figure must still be a
	// well-formed probe duration either way.
}

// TestTaskbenchAdaptiveGrain: a grainless taskbench job gets a server-chosen
// grain from its own controller (jobKinds wiring), within the kind's bounds.
func TestTaskbenchAdaptiveGrain(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	if s.Engine().Grain(KindTaskbench) == 0 {
		t.Fatal("no adaptive controller for taskbench kind")
	}

	resp, v := postJob(t, ts.URL, JobSpec{Kind: KindTaskbench, Size: 8, Steps: 3, Pattern: "chain"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s")
	if got.State != JobDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	if got.GrainSource != "adaptive" {
		t.Fatalf("grain_source = %q, want adaptive", got.GrainSource)
	}
	if got.Grain < 1 || got.Grain > maxTaskbenchGrain {
		t.Fatalf("chosen grain %d out of taskbench range", got.Grain)
	}
}

// TestTaskbenchClampGrain: adaptive recommendations are clamped to the same
// range grainBounds declares — in particular a low recommendation lands on
// the 256-unit floor, not at 1.
func TestTaskbenchClampGrain(t *testing.T) {
	lo, hi, _ := grainBounds(KindTaskbench, maxTaskbenchWidth)
	if got := clampGrain(KindTaskbench, 1, 8); got != lo {
		t.Errorf("clampGrain(taskbench, 1) = %d, want floor %d", got, lo)
	}
	if got := clampGrain(KindTaskbench, maxTaskbenchGrain*2, 8); got != hi {
		t.Errorf("clampGrain(taskbench, 2*max) = %d, want ceiling %d", got, hi)
	}
	if got := clampGrain(KindTaskbench, 5_000, 8); got != 5_000 {
		t.Errorf("clampGrain(taskbench, 5000) = %d, want passthrough", got)
	}
}

// TestTaskbenchValidation: taskbench-specific spec errors are 400s, and
// taskbench-only fields are rejected on other kinds.
func TestTaskbenchValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	bad := []JobSpec{
		{Kind: KindTaskbench, Size: 8, Pattern: "moebius"},
		{Kind: KindTaskbench, Size: 8, Kernel: "gemm"},
		{Kind: KindTaskbench, Size: maxTaskbenchWidth + 1},
		{Kind: KindTaskbench, Size: 8, Grain: maxTaskbenchGrain + 1},
		{Kind: KindStencil, Size: 1000, Pattern: "fft"},
		{Kind: KindFibonacci, Size: 20, Metg: true},
	}
	for _, spec := range bad {
		resp, _ := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}

	// Defaulting: an empty pattern means stencil1d.
	resp, v := postJob(t, ts.URL, JobSpec{Kind: KindTaskbench, Size: 4, Steps: 2, Grain: 1000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("default-pattern submit: %d", resp.StatusCode)
	}
	got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s")
	if got.Pattern != "stencil1d" {
		t.Errorf("default pattern = %q, want stencil1d", got.Pattern)
	}
	if got.State != JobDone {
		t.Errorf("state %s, error %q", got.State, got.Error)
	}
}
