package taskserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"taskgrain/internal/telemetry"
	"taskgrain/internal/trace"
)

func TestMetricsEndpointServesOpenMetrics(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateOpenMetrics(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	if n == 0 {
		t.Fatal("no samples exposed")
	}
	text := string(raw)
	// The paper's counters come out under stable Prometheus names with the
	// node label applied.
	for _, want := range []string{
		"taskgrain_threads_idle_rate{node=",
		"taskgrain_threads_time_average_overhead{node=",
		"taskgrain_server_jobs_queued{node=",
		"# TYPE taskgrain_threads_count_cumulative counter",
		"taskgrain_telemetry_watchdog_active{node=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
}

func TestTelemetryAlertsAndSeriesEndpoints(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	s.Telemetry().SampleNow()

	resp, err := http.Get(ts.URL + "/telemetry/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var alerts struct {
		Alerts []telemetry.Alert `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(alerts.Alerts) != 1 || alerts.Alerts[0].Active {
		t.Fatalf("fresh server alerts = %+v", alerts.Alerts)
	}

	resp, err = http.Get(ts.URL + "/telemetry/series?name=/server/idle-rate&n=5&window=10s")
	if err != nil {
		t.Fatal(err)
	}
	var series struct {
		Name   string            `json:"name"`
		Points []telemetry.Point `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if series.Name != "/server/idle-rate" || len(series.Points) == 0 {
		t.Fatalf("series = %+v", series)
	}

	for _, bad := range []string{
		"/telemetry/series",                       // missing name
		"/telemetry/series?name=/x&n=0",           // bad n
		"/telemetry/series?name=/x&window=potato", // bad window
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestTraceHeaderPropagatesIntoJob(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	sc := trace.NewSpanContext()
	body, _ := json.Marshal(JobSpec{Kind: KindStencil, Size: 4000, Steps: 2, Grain: 500})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, sc.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if v.TraceContext != sc.String() {
		t.Fatalf("trace_context = %q, want %q", v.TraceContext, sc.String())
	}
	// The context survives into later status reads.
	if got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=30s"); got.TraceContext != sc.String() {
		t.Fatalf("status trace_context = %q", got.TraceContext)
	}
	if n, _ := s.rt.Counters().Value("/server/trace/propagated"); n != 1 {
		t.Fatalf("/server/trace/propagated = %v", n)
	}

	// A malformed header leaves the job untraced instead of failing it.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(trace.Header, "not-a-trace")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	v = JobView{}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || v.TraceContext != "" {
		t.Fatalf("malformed header: status %d trace %q", resp.StatusCode, v.TraceContext)
	}

	// A malformed body-carried context is a spec error.
	bad, _ := json.Marshal(JobSpec{Kind: KindStencil, Size: 4000, Grain: 500, TraceContext: "zzz"})
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bad))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body trace accepted: %d", resp.StatusCode)
	}
}

func TestWatchdogEvaluatesFromSamplerHook(t *testing.T) {
	cfg := testConfig()
	cfg.TelemetryInterval = 5 * time.Millisecond
	s, _ := newTestServer(t, cfg)
	// The hook runs on every tick; the fresh server must settle un-alerted
	// with real samples accumulating in the ring.
	deadline := time.Now().Add(2 * time.Second)
	for s.Telemetry().Ring().Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if a := s.Watchdog().Current(); a.Active {
		t.Fatalf("idle server alerted: %+v", a)
	}
}
