package taskserve

// Tests for the node-side mesh support surface: the drain-state healthz
// body, the /server load counters a mesh registry heartbeats, and
// idempotency-keyed submission replay.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func getHealth(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var v struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("healthz body not JSON: %v", err)
	}
	return v.Status
}

func TestHealthzReportsDrainState(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	if got := getHealth(t, ts.URL); got != "ok" {
		t.Fatalf("healthz status %q, want ok", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := getHealth(t, ts.URL); got != "draining" {
		t.Fatalf("healthz status after Drain %q, want draining", got)
	}
}

func TestMeshLoadCountersExposed(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/debug/counters?prefix=/server")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/server/idle-rate", "/server/jobs/running", "/server/draining", "/server/jobs/queued"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("/debug/counters missing %s", name)
		}
	}
	if snap["/server/draining"] != 0 {
		t.Fatalf("/server/draining = %v before drain", snap["/server/draining"])
	}
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.rt.Counters().Value("/server/draining"); v != 1 {
		t.Fatalf("/server/draining = %v after drain, want 1", v)
	}
}

func TestIdempotentSubmitReplays(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	spec := JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10, IdempotencyKey: "mesh-abc-1"}
	first, shed := s.Submit(spec)
	if shed != nil {
		t.Fatal(shed)
	}
	again, shed := s.Submit(spec)
	if shed != nil {
		t.Fatal(shed)
	}
	if again.ID() != first.ID() {
		t.Fatalf("idempotent replay created a new job: %s vs %s", again.ID(), first.ID())
	}
	<-first.Done()
	// Replay after completion still returns the same terminal job.
	done, shed := s.Submit(spec)
	if shed != nil {
		t.Fatal(shed)
	}
	if done.ID() != first.ID() || done.State() != JobDone {
		t.Fatalf("post-completion replay: id=%s state=%s", done.ID(), done.State())
	}
	if got := s.submitted.Raw(); got != 1 {
		t.Fatalf("submitted counter %d after replays, want 1", got)
	}
	// A different key is a different job.
	other, shed := s.Submit(JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10, IdempotencyKey: "mesh-abc-2"})
	if shed != nil {
		t.Fatal(shed)
	}
	if other.ID() == first.ID() {
		t.Fatal("distinct keys shared a job")
	}
}

func TestIdempotentSubmitConcurrentRace(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	const clients = 16
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, shed := s.Submit(JobSpec{Kind: KindFibonacci, Size: 18, Grain: 10, IdempotencyKey: "race-key"})
			if shed == nil {
				ids[i] = j.ID()
			}
		}()
	}
	wg.Wait()
	want := ""
	for _, id := range ids {
		if id == "" {
			continue
		}
		if want == "" {
			want = id
		}
		if id != want {
			t.Fatalf("concurrent idempotent submits produced distinct jobs: %v", ids)
		}
	}
	if want == "" {
		t.Fatal("every concurrent submit was shed")
	}
	if got := s.submitted.Raw(); got != 1 {
		t.Fatalf("submitted counter %d, want 1", got)
	}
}

func TestIdempotentReplayDuringDrain(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	spec := JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10, IdempotencyKey: "drain-key"}
	first, shed := s.Submit(spec)
	if shed != nil {
		t.Fatal(shed)
	}
	<-first.Done()
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The node refuses new work while draining, but a replay of admitted
	// work still answers — failover resubmission must not double-run.
	j, shed := s.Submit(spec)
	if shed != nil {
		t.Fatalf("idempotent replay shed during drain: %v", shed)
	}
	if j.ID() != first.ID() {
		t.Fatalf("replay during drain created job %s, want %s", j.ID(), first.ID())
	}
	if _, shed := s.Submit(JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10, IdempotencyKey: "fresh-key"}); shed == nil {
		t.Fatal("fresh submission admitted while draining")
	}
}

func TestValidateIdempotencyKeyBound(t *testing.T) {
	long := make([]byte, maxIdempotencyKey+1)
	for i := range long {
		long[i] = 'k'
	}
	spec := JobSpec{Kind: KindFibonacci, Size: 10, IdempotencyKey: string(long)}
	if err := spec.Validate(1 << 20); err == nil {
		t.Fatal("oversized idempotency key accepted")
	}
}
