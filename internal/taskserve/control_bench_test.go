package taskserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taskgrain/internal/config"
	"taskgrain/internal/policyengine"
)

// BenchmarkX16ControlLoop measures the control plane's cold-start cost
// (EXPERIMENTS X16): b.N adaptive stencil jobs submitted one at a time
// against a fresh node, so ns/op is the per-job wall including the grain
// walk the controller performs while converging. The variants isolate the
// two control-plane levers: advisory mode gates policy actions and external
// hints (the per-job walk, being the kind's own local evidence, still
// moves), actuate additionally accepts hints, and hint=cluster seeds the
// node with a cluster-consensus grain over POST /control/hint before the
// first job — the restarted-node path, where inherited state should shrink
// the walk. grain-moves is the cold-start churn figure: total grow+shrink
// decisions the run needed before settling (a hinted node should need
// none); final-grain shows where the walk (or the hint) landed.
func BenchmarkX16ControlLoop(b *testing.B) {
	variants := []struct {
		name string
		mode policyengine.Mode
		hint int // 0 = no hint pushed
	}{
		{"mode=advisory/hint=none", policyengine.ModeAdvisory, 0},
		{"mode=actuate/hint=none", policyengine.ModeActuate, 0},
		{"mode=actuate/hint=cluster", policyengine.ModeActuate, 4096},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := config.DefaultServer()
			cfg.Workers = 2
			cfg.MaxConcurrentJobs = 1
			cfg.MaxQueuedJobs = 1 << 18
			cfg.SampleInterval = 5 * time.Millisecond
			cfg.ShedMinTasks = 1e12
			cfg.ControlMode = string(v.mode)
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				_ = s.Close()
			}()

			if v.hint > 0 {
				hint, _ := json.Marshal(map[string]any{
					"grains": map[string]int{KindStencil: v.hint},
					"source": "bench-cluster",
				})
				resp, err := http.Post(ts.URL+"/control/hint", "application/json", bytes.NewReader(hint))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("hint push: status %d", resp.StatusCode)
				}
			}

			spec, _ := json.Marshal(JobSpec{Kind: KindStencil, Size: 40_000, Steps: 2})
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
				if err != nil {
					b.Fatal(err)
				}
				var view JobView
				if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					b.Fatalf("submit: status %d", resp.StatusCode)
				}
				poll, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=true&timeout=60s", ts.URL, view.ID))
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, poll.Body)
				poll.Body.Close()
			}
			b.StopTimer()

			_, _, grown, shrunk, _ := s.Engine().GrainStats(KindStencil)
			b.ReportMetric(float64(grown+shrunk), "grain-moves")
			b.ReportMetric(float64(s.Engine().Grain(KindStencil)), "final-grain")
		})
	}
}
