package taskserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadSoak drives a sustained mixed-kind job stream from concurrent
// clients through the full HTTP path, honouring Retry-After on sheds, and
// then checks the books balance: every admitted job reaches a terminal
// state, the outcome counters sum to the admission count, and the drain
// leaves the runtime quiescent.
func TestLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := testConfig()
	cfg.MaxQueuedJobs = 16
	cfg.MaxConcurrentJobs = 4
	s, ts := newTestServer(t, cfg)

	specs := []JobSpec{
		{Kind: KindStencil, Size: 50_000, Steps: 2, Grain: 2000},
		{Kind: KindStencil, Size: 50_000, Steps: 2}, // adaptive
		{Kind: KindFibonacci, Size: 26, Grain: 14},
		{Kind: KindFibonacci, Size: 22}, // adaptive
		{Kind: KindIrregular, Size: 100_000, Grain: 1000, Seed: 3},
		{Kind: KindIrregular, Size: 100_000, Seed: 4}, // adaptive
		{Kind: KindTaskbench, Size: 16, Steps: 3, Pattern: "fft", Grain: 5000},
		{Kind: KindTaskbench, Size: 8, Steps: 4, Pattern: "tree", Kernel: "memwalk"}, // adaptive
		{Kind: KindTaskbench, Size: 12, Steps: 3, Pattern: "random", Seed: 11},       // adaptive
	}

	const (
		clients       = 6
		jobsPerClient = 25
	)
	var (
		mu       sync.Mutex
		admitted []string
		shed     atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPerClient; i++ {
				spec := specs[(c+i)%len(specs)]
				body, _ := json.Marshal(spec)
				for attempt := 0; attempt < 20; attempt++ {
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						shed.Add(1)
						// Honour the hint but stay fast: the server's
						// Retry-After is a ceiling for a soak test.
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("client %d job %d: status %d: %s", c, i, resp.StatusCode, raw)
						return
					}
					var v JobView
					if err := json.Unmarshal(raw, &v); err != nil {
						t.Errorf("client %d job %d: %v", c, i, err)
						return
					}
					mu.Lock()
					admitted = append(admitted, v.ID)
					mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if _, err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	done := 0
	for _, id := range admitted {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("admitted job %s vanished", id)
		}
		st := j.State()
		if !st.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", id, st)
		}
		if st == JobDone {
			done++
			if v := j.View(); v.Result == nil || v.Result.Tasks == 0 {
				t.Fatalf("job %s done without a result", id)
			}
		}
	}
	if done == 0 {
		t.Fatal("soak completed zero jobs")
	}

	stats := s.StatsSnapshot()
	if stats.Submitted != int64(len(admitted)) {
		t.Fatalf("submitted counter %d, admitted %d", stats.Submitted, len(admitted))
	}
	if got := stats.Completed + stats.Failed + stats.Cancelled; got != stats.Submitted {
		t.Fatalf("outcomes %d (done %d, failed %d, cancelled %d) != submitted %d",
			got, stats.Completed, stats.Failed, stats.Cancelled, stats.Submitted)
	}
	if stats.InflightTasks != 0 {
		t.Fatalf("runtime not quiescent after drain: %d inflight tasks", stats.InflightTasks)
	}
	t.Logf("soak: %d admitted, %d done, %d sheds", len(admitted), done, shed.Load())
}
