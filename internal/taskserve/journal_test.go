package taskserve

import (
	"testing"
	"time"

	"taskgrain/internal/config"
	"taskgrain/internal/journal"
)

// journalConfig is testConfig plus a journal rooted in a fresh temp dir.
func journalConfig(t *testing.T) config.Server {
	t.Helper()
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	cfg.JournalFsyncInterval = time.Millisecond
	return cfg
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) JobState {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in %s", id, j.State())
	}
	return j.State()
}

// TestJournalCrashRestartRequeues is the core durability path: jobs admitted
// (202) before a crash must reappear on a restarted server over the same
// journal dir and run to completion under the requeue policy.
func TestJournalCrashRestartRequeues(t *testing.T) {
	cfg := journalConfig(t)
	// One runner and a long job keep later admissions queued at crash time.
	cfg.MaxConcurrentJobs = 1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	blocker, se := a.Submit(JobSpec{Kind: KindStencil, Size: 2_000_000, Steps: 20, Grain: 2000})
	if se != nil {
		t.Fatalf("blocker shed: %v", se.reason)
	}
	var queued []string
	for i := 0; i < 4; i++ {
		j, se := a.Submit(JobSpec{Kind: KindFibonacci, Size: 10,
			IdempotencyKey: "crash-key-" + string(rune('a'+i))})
		if se != nil {
			t.Fatalf("submit %d shed: %v", i, se.reason)
		}
		queued = append(queued, j.ID())
	}
	a.Crash()

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.recoveredC.Raw(); got < int64(len(queued)) {
		t.Fatalf("/journal/recovered-jobs = %d, want ≥ %d", got, len(queued))
	}
	// Idempotency keys must survive the restart: resubmitting under the same
	// key replays the recovered job instead of admitting a second run.
	rj, se := b.Submit(JobSpec{Kind: KindFibonacci, Size: 10, IdempotencyKey: "crash-key-a"})
	if se != nil {
		t.Fatalf("replay submit shed: %v", se.reason)
	}
	if rj.ID() != queued[0] {
		t.Fatalf("idempotency replay returned %s, want recovered %s", rj.ID(), queued[0])
	}
	b.Start()
	for _, id := range append([]string{blocker.ID()}, queued...) {
		if st := waitTerminal(t, b, id); !st.Terminal() {
			t.Fatalf("recovered job %s ended non-terminal: %s", id, st)
		}
	}
	for _, id := range queued {
		if st := waitTerminal(t, b, id); st != JobDone {
			t.Fatalf("requeued job %s = %s, want done", id, st)
		}
	}
}

// TestJournalRecoveryFailPolicy marks recovered non-terminal jobs
// lost-on-crash instead of re-running them.
func TestJournalRecoveryFailPolicy(t *testing.T) {
	cfg := journalConfig(t)
	cfg.MaxConcurrentJobs = 1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	// The blocker owns the only runner, so the victim stays queued until the
	// crash drops it.
	if _, se := a.Submit(JobSpec{Kind: KindStencil, Size: 2_000_000, Steps: 20, Grain: 2000}); se != nil {
		t.Fatalf("blocker shed: %v", se.reason)
	}
	j, se := a.Submit(JobSpec{Kind: KindFibonacci, Size: 8})
	if se != nil {
		t.Fatalf("submit shed: %v", se.reason)
	}
	a.Crash()

	cfg.JournalRecovery = config.JournalRecoveryFail
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rj, ok := b.Job(j.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j.ID())
	}
	if st := rj.State(); st != JobFailed {
		t.Fatalf("recovered job state = %s, want failed under the fail policy", st)
	}
	if rj.View().Error != "lost-on-crash" {
		t.Fatalf("recovered job error = %q, want lost-on-crash", rj.View().Error)
	}
	// The verdict itself is journaled: a second restart must not resurrect.
	b.Close()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cj, ok := c.Job(j.ID())
	if !ok {
		t.Fatalf("job %s gone after second restart", j.ID())
	}
	if st := cj.State(); st != JobFailed {
		t.Fatalf("second restart state = %s, want failed", st)
	}
}

// TestDrainFlushesJournal is the graceful-shutdown regression test: a
// drained server's journal must recover to an empty non-terminal set — the
// drain compaction + fsync ran before exit.
func TestDrainFlushesJournal(t *testing.T) {
	cfg := journalConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var ids []string
	for i := 0; i < 5; i++ {
		j, se := s.Submit(JobSpec{Kind: KindFibonacci, Size: 10})
		if se != nil {
			t.Fatalf("submit %d shed: %v", i, se.reason)
		}
		ids = append(ids, j.ID())
	}
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(cfg.JournalDir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil {
		t.Fatal("drain wrote no compaction snapshot")
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, id := range ids {
		j, ok := b.Job(id)
		if !ok {
			t.Fatalf("job %s lost across drained restart", id)
		}
		if st := j.State(); !st.Terminal() {
			t.Fatalf("drained restart recovered %s as %s — non-terminal set not empty", id, st)
		}
	}
}

// TestTerminalTTLEvictionCompacts is the unbounded-growth bugfix test:
// terminal jobs older than the TTL leave the store, and the journal mirrors
// the eviction with a compaction snapshot so it forgets them too.
func TestTerminalTTLEvictionCompacts(t *testing.T) {
	cfg := journalConfig(t)
	cfg.TerminalTTL = 30 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	j, se := s.Submit(JobSpec{Kind: KindFibonacci, Size: 8})
	if se != nil {
		t.Fatalf("submit shed: %v", se.reason)
	}
	waitTerminal(t, s, j.ID())

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, stillThere := s.Job(j.ID())
		if !stillThere && s.wal.SnapshotLSN() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TTL eviction did not run: job present=%v snapshotLSN=%d",
				stillThere, s.wal.SnapshotLSN())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The journal forgot the evicted job: a restarted server no longer
	// serves it.
	s.Close()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, ok := b.Job(j.ID()); ok {
		t.Fatalf("TTL-evicted job %s resurrected from the journal", j.ID())
	}
}

// TestTerminalTTLEvictionWithoutJournal covers the store-only variant of the
// eviction bugfix: TTL eviction must work with durability disabled.
func TestTerminalTTLEvictionWithoutJournal(t *testing.T) {
	cfg := testConfig()
	cfg.TerminalTTL = 30 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	j, se := s.Submit(JobSpec{Kind: KindFibonacci, Size: 8})
	if se != nil {
		t.Fatalf("submit shed: %v", se.reason)
	}
	waitTerminal(t, s, j.ID())
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Job(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never TTL-evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
