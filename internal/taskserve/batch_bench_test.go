package taskserve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taskgrain/internal/config"
)

// BenchmarkX15BatchSubmit measures the serving layer's per-request wall
// (EXPERIMENTS X15): tiny jobs submitted through POST /v1/jobs/batch at the
// X15 batch sizes against a journaled server with fsync=always, so every
// submit round-trip pays exactly the fixed costs batching amortizes — one
// HTTP exchange, one admission check, one durability fsync. b.N counts JOBS,
// not round-trips, so ns/op is directly the per-job admission cost and the
// batch=1 → batch=256 trend is the per-request wall moving left.
func BenchmarkX15BatchSubmit(b *testing.B) {
	for _, size := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			cfg := config.DefaultServer()
			cfg.Workers = 2
			cfg.MaxConcurrentJobs = 4
			cfg.MaxQueuedJobs = 1 << 18
			cfg.MaxBatchJobs = 256
			cfg.SampleInterval = 5 * time.Millisecond
			cfg.ShedMinTasks = 1e12
			cfg.JournalDir = b.TempDir()
			cfg.JournalFsync = "always"
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				_ = s.Close()
			}()

			body := []byte(fibBatchBody(size, ""))
			b.ResetTimer()
			for n := 0; n < b.N; n += size {
				resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					b.Fatalf("batch submit: status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			if jobs := float64(b.N); jobs > 0 {
				b.ReportMetric(float64(s.wal.Fsyncs())/jobs, "fsyncs/job")
				b.ReportMetric(float64(s.wal.AppendsBatched())/jobs, "batched-appends/job")
			}
		})
	}
}
