package taskserve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is a job's lifecycle state. Unlike task states (which the runtime
// owns), job states are service-level: queued (admitted, waiting for a
// runner slot), running (its task group is on the runtime), then exactly one
// of done, failed, or cancelled.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobResult summarizes a completed job's execution.
type JobResult struct {
	// Tasks is the number of runtime tasks the job spawned.
	Tasks int64 `json:"tasks"`
	// Checksum is a workload-defined digest of the computed values, so
	// clients can assert two runs computed the same thing.
	Checksum float64 `json:"checksum"`
	// IdleRate is Eq. 1 over the job's execution interval. Approximate when
	// jobs overlap on the shared runtime.
	IdleRate float64 `json:"idle_rate"`
	// Pattern echoes the dependence pattern a taskbench job ran.
	Pattern string `json:"pattern,omitempty"`
	// Efficiency is the taskbench run's parallel efficiency (1 − idle-rate
	// over its own counter interval).
	Efficiency float64 `json:"efficiency,omitempty"`
	// MetgNs is the METG(50%) figure of a taskbench job submitted with
	// metg=true: the smallest task duration (ns) that still met 50%
	// parallel efficiency on this pattern. MetgFound reports whether any
	// probed granularity met the target.
	MetgNs    float64 `json:"metg_ns,omitempty"`
	MetgFound bool    `json:"metg_found,omitempty"`
	// generations is the number of dependency waves the workload ran
	// (internal: feeds the adaptive tuner's parallel-slack signal).
	generations int
}

// Job is one admitted submission.
type Job struct {
	id   string
	spec JobSpec

	mu          sync.Mutex
	state       JobState
	grain       int
	grainSource string // "request" or "adaptive"
	decision    string // adaptive decision recorded after the run, if any
	errMsg      string
	result      *JobResult
	submitted   time.Time
	started     time.Time
	finished    time.Time
	deadline    time.Time // zero = none

	// cancel carries the first abort request ("cancelled by client",
	// "deadline exceeded"); task bodies poll cancelRequested.
	cancelRequested chan struct{}
	cancelOnce      sync.Once
	cancelReason    string
	cancelToState   JobState

	done chan struct{} // closed on any terminal transition

	// terminalLogged guards the once-per-job terminal accounting (outcome
	// counter + journal record) against the runner/cancel race.
	terminalLogged atomic.Bool
}

func newJob(id string, spec JobSpec, deadline time.Time) *Job {
	return &Job{
		id:              id,
		spec:            spec,
		state:           JobQueued,
		submitted:       time.Now(),
		deadline:        deadline,
		cancelRequested: make(chan struct{}),
		done:            make(chan struct{}),
	}
}

// newRecoveredJob rebuilds a job from its journaled lifecycle under its
// original ID. A job recovered terminal arrives fully settled (done closed,
// terminal accounting already spent — its outcome counters belong to the
// previous process); a non-terminal one arrives queued, ready for the
// recovery policy to requeue or fail it.
func newRecoveredJob(id string, spec JobSpec, deadline time.Time, state JobState, errMsg string, grain int) *Job {
	j := newJob(id, spec, deadline)
	j.grain = grain
	if state.Terminal() {
		j.state = state
		j.errMsg = errMsg
		j.finished = time.Now()
		j.terminalLogged.Store(true)
		close(j.done)
	}
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// aborted reports whether an abort (cancel or deadline) has been requested.
func (j *Job) aborted() bool {
	select {
	case <-j.cancelRequested:
		return true
	default:
		return false
	}
}

// requestAbort records the first abort request. toState picks the terminal
// state the job will land in (JobCancelled for client cancellation,
// JobFailed for deadline expiry). A job still queued transitions immediately;
// a running job's tasks observe the flag and drain.
func (j *Job) requestAbort(reason string, toState JobState) {
	j.cancelOnce.Do(func() {
		j.mu.Lock()
		j.cancelReason = reason
		j.cancelToState = toState
		close(j.cancelRequested)
		if j.state == JobQueued {
			j.state = toState
			j.errMsg = reason
			j.finished = time.Now()
			close(j.done)
		}
		j.mu.Unlock()
	})
}

// startRunning transitions queued→running, recording the grain decision. It
// reports false if the job was aborted while queued (the runner skips it).
func (j *Job) startRunning(grain int, source string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.grain = grain
	j.grainSource = source
	j.started = time.Now()
	return true
}

// finish moves a running job to its terminal state.
func (j *Job) finish(res *JobResult, runErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	j.finished = time.Now()
	switch {
	case j.cancelToState != "": // abort won the race
		j.state = j.cancelToState
		j.errMsg = j.cancelReason
	case runErr != nil:
		j.state = JobFailed
		j.errMsg = runErr.Error()
	default:
		j.state = JobDone
		j.result = res
	}
	close(j.done)
}

// journalState snapshots the fields a journal record or snapshot needs.
func (j *Job) journalState() (spec JobSpec, deadline time.Time, state JobState, errMsg string, grain int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spec, j.deadline, j.state, j.errMsg, j.grain
}

// finishedAt returns when the job reached a terminal state (zero if it
// hasn't).
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// setDecision records the adaptive tuner's verdict on the job's grain.
func (j *Job) setDecision(d string) {
	j.mu.Lock()
	j.decision = d
	j.mu.Unlock()
}

// JobView is the JSON representation of a job served by the API.
type JobView struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	Size        int        `json:"size"`
	Steps       int        `json:"steps,omitempty"`
	Pattern     string     `json:"pattern,omitempty"`
	State       JobState   `json:"state"`
	Grain       int        `json:"grain,omitempty"`
	GrainSource string     `json:"grain_source,omitempty"`
	Decision    string     `json:"adaptive_decision,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ElapsedMS   float64    `json:"elapsed_ms,omitempty"`
	DeadlineAt  *time.Time `json:"deadline_at,omitempty"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	// TraceContext echoes the propagated cross-hop trace identity, so a
	// client (or the mesh gateway) can stitch this job into its trace.
	TraceContext string `json:"trace_context,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Kind:        j.spec.Kind,
		Size:        j.spec.Size,
		Steps:       j.spec.Steps,
		Pattern:     j.spec.Pattern,
		State:       j.state,
		Grain:       j.grain,
		GrainSource: j.grainSource,
		Decision:    j.decision,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Result:      j.result,

		TraceContext: j.spec.TraceContext,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		v.DeadlineAt = &t
	}
	return v
}

// retainFinished bounds how many terminal jobs the store keeps for status
// polling; older finished jobs are evicted FIFO so a long-lived daemon's
// memory stays flat.
const retainFinished = 1024

// jobStore indexes jobs by ID (and idempotency key) and evicts old finished
// jobs.
type jobStore struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	keys     map[string]string // idempotency key → job ID
	order    []string          // insertion order, for listing and eviction
	nextID   uint64
	finished int
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job), keys: make(map[string]string)}
}

// add registers a new job under a fresh ID. If the spec carries an
// idempotency key already held by a retained job, that job is returned with
// dup=true instead — the check and the key registration are atomic, so
// concurrent duplicate submissions admit exactly one run.
func (st *jobStore) add(spec JobSpec, deadline time.Time) (j *Job, dup bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if spec.IdempotencyKey != "" {
		if id, ok := st.keys[spec.IdempotencyKey]; ok {
			if existing, ok := st.jobs[id]; ok {
				return existing, true
			}
		}
	}
	st.nextID++
	id := fmt.Sprintf("j-%d", st.nextID)
	j = newJob(id, spec, deadline)
	st.jobs[id] = j
	if spec.IdempotencyKey != "" {
		st.keys[spec.IdempotencyKey] = id
	}
	st.order = append(st.order, id)
	st.evictLocked()
	return j, false
}

// restore inserts a recovered job under its original ID, re-registering its
// idempotency key and advancing nextID past the recovered numeric suffix so
// fresh admissions never collide with replayed ones.
func (st *jobStore) restore(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobs[j.id] = j
	if j.spec.IdempotencyKey != "" {
		st.keys[j.spec.IdempotencyKey] = j.id
	}
	st.order = append(st.order, j.id)
	if n, err := strconv.ParseUint(strings.TrimPrefix(j.id, "j-"), 10, 64); err == nil && n > st.nextID {
		st.nextID = n
	}
}

// evictTerminalOlderThan drops terminal jobs that finished before cutoff,
// returning how many were evicted. Non-terminal jobs are never touched.
func (st *jobStore) evictTerminalOlderThan(cutoff time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	evicted := 0
	kept := st.order[:0]
	for _, id := range st.order {
		j := st.jobs[id]
		if fin := j.finishedAt(); j.State().Terminal() && !fin.IsZero() && fin.Before(cutoff) {
			st.dropLocked(id)
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
	return evicted
}

// remove deletes a job that was never run (admission race loser).
func (st *jobStore) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dropLocked(id)
	for i, oid := range st.order {
		if oid == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// dropLocked deletes one job and its key-index entry. Caller holds st.mu.
func (st *jobStore) dropLocked(id string) {
	if j, ok := st.jobs[id]; ok && j.spec.IdempotencyKey != "" {
		delete(st.keys, j.spec.IdempotencyKey)
	}
	delete(st.jobs, id)
}

// getByKey looks a job up by idempotency key ("" never matches).
func (st *jobStore) getByKey(key string) (*Job, bool) {
	if key == "" {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	id, ok := st.keys[key]
	if !ok {
		return nil, false
	}
	j, ok := st.jobs[id]
	return j, ok
}

// get looks a job up by ID.
func (st *jobStore) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list snapshots every retained job in submission order.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.order))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Non-terminal jobs are never evicted. Caller holds st.mu.
func (st *jobStore) evictLocked() {
	terminal := 0
	for _, id := range st.order {
		if st.jobs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= retainFinished {
		return
	}
	kept := st.order[:0]
	for _, id := range st.order {
		if terminal > retainFinished && st.jobs[id].State().Terminal() {
			st.dropLocked(id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
}

// counts tallies jobs by state.
func (st *jobStore) counts() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[JobState]int)
	for _, j := range st.jobs {
		out[j.State()]++
	}
	return out
}
