package taskserve

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"taskgrain/internal/counters"
	"taskgrain/internal/journal"
)

// Journal record kinds. One record is appended per lifecycle transition:
// admit (before the 202 is issued, so an acknowledged job is always
// recoverable), start (grain chosen, task group headed for the runtime),
// term (exactly one per job, guarded by Job.terminalLogged), and drop (an
// admit that was rescinded before the job ever ran — shed on a full queue or
// a drain race — so recovery must forget it rather than resurrect it).
const (
	walAdmit = "admit"
	walStart = "start"
	walTerm  = "term"
	walDrop  = "drop"
)

// walRecord is one journaled lifecycle transition. Spec rides on the admit
// record (it is everything needed to re-run the job, idempotency key
// included); the rest are deltas keyed by job ID.
type walRecord struct {
	T        string   `json:"t"`
	ID       string   `json:"id"`
	Spec     *JobSpec `json:"spec,omitempty"`
	Deadline int64    `json:"deadline,omitempty"` // unix ns, 0 = none
	Grain    int      `json:"grain,omitempty"`
	State    JobState `json:"state,omitempty"`
	Err      string   `json:"err,omitempty"`
}

// walSnapJob is one job inside a compaction snapshot.
type walSnapJob struct {
	ID       string   `json:"id"`
	Spec     JobSpec  `json:"spec"`
	State    JobState `json:"state"`
	Err      string   `json:"err,omitempty"`
	Grain    int      `json:"grain,omitempty"`
	Deadline int64    `json:"deadline,omitempty"`
}

// walSnapshot is the full-store state a compaction writes; segments wholly
// below its LSN are deleted, so jobs TTL-evicted from the store are forgotten
// by the journal at the next compaction.
type walSnapshot struct {
	NextID uint64       `json:"next_id"`
	Jobs   []walSnapJob `json:"jobs"`
}

// recoveredJob is the replay accumulator for one journaled job.
type recoveredJob struct {
	id       string
	spec     JobSpec
	deadline int64
	grain    int
	state    JobState
	errMsg   string
}

// setupJournal recovers the journal directory into the job store, re-queues
// or fails non-terminal survivors per the recovery policy, opens the journal
// for appending, and registers the /journal/* counters. Called from New
// before Start, so replayed jobs sit in the queue until the runners launch.
func (s *Server) setupJournal() error {
	rec, err := journal.Recover(s.cfg.JournalDir)
	if err != nil {
		return fmt.Errorf("taskserve: journal recovery: %w", err)
	}

	byID := make(map[string]*recoveredJob)
	var order []string
	var snapNextID uint64
	if rec.Snapshot != nil {
		var snap walSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return fmt.Errorf("taskserve: journal snapshot: %w", err)
		}
		snapNextID = snap.NextID
		for _, sj := range snap.Jobs {
			byID[sj.ID] = &recoveredJob{
				id: sj.ID, spec: sj.Spec, deadline: sj.Deadline,
				grain: sj.Grain, state: sj.State, errMsg: sj.Err,
			}
			order = append(order, sj.ID)
		}
	}
	for _, r := range rec.Records {
		var w walRecord
		if err := json.Unmarshal(r.Payload, &w); err != nil {
			return fmt.Errorf("taskserve: journal record at LSN %d: %w", r.LSN, err)
		}
		switch w.T {
		case walAdmit:
			if _, ok := byID[w.ID]; !ok && w.Spec != nil {
				byID[w.ID] = &recoveredJob{
					id: w.ID, spec: *w.Spec, deadline: w.Deadline, state: JobQueued,
				}
				order = append(order, w.ID)
			}
		case walStart:
			if rj, ok := byID[w.ID]; ok {
				rj.grain = w.Grain
				if !rj.state.Terminal() {
					rj.state = JobRunning
				}
			}
		case walTerm:
			if rj, ok := byID[w.ID]; ok && !rj.state.Terminal() {
				rj.state = w.State
				rj.errMsg = w.Err
			}
		case walDrop:
			delete(byID, w.ID)
		}
	}

	requeued, lost := 0, 0
	for _, id := range order {
		rj, ok := byID[id]
		if !ok { // dropped
			continue
		}
		var deadline time.Time
		if rj.deadline != 0 {
			deadline = time.Unix(0, rj.deadline)
		}
		state := rj.state
		errMsg := rj.errMsg
		if !state.Terminal() {
			if s.cfg.RecoveryRequeues() {
				state = JobQueued
			} else {
				state, errMsg = JobFailed, "lost-on-crash"
			}
		}
		job := newRecoveredJob(rj.id, rj.spec, deadline, state, errMsg, rj.grain)
		if state == JobQueued {
			select {
			case s.queue <- job:
				requeued++
			default:
				// Recovery outgrew the queue; failing loudly beats silently
				// resurrecting more work than the daemon admits.
				job.requestAbort("lost-on-crash: recovery queue overflow", JobFailed)
				job.terminalLogged.Store(true)
				lost++
			}
		} else if !rj.state.Terminal() {
			lost++
		}
		s.store.restore(job)
	}
	if snapNextID > 0 {
		s.store.mu.Lock()
		if snapNextID > s.store.nextID {
			s.store.nextID = snapNextID
		}
		s.store.mu.Unlock()
	}

	pol, err := s.cfg.JournalFsyncPolicy()
	if err != nil {
		return err
	}
	w, err := journal.Open(s.cfg.JournalDir, journal.Options{
		SegmentBytes:  s.cfg.JournalSegmentBytes,
		Fsync:         pol,
		FsyncInterval: s.cfg.JournalFsyncInterval,
	})
	if err != nil {
		return fmt.Errorf("taskserve: journal open: %w", err)
	}
	s.wal = w

	// Journaled lost-on-crash verdicts must outlive the next restart; the
	// requeued jobs stay non-terminal on purpose (they will run again).
	for _, id := range order {
		if j, ok := s.store.get(id); ok && j.State().Terminal() {
			if rj := byID[id]; rj != nil && !rj.state.Terminal() {
				s.journalTerm(j)
			}
		}
	}

	s.recoveredC.Add(int64(len(order)))
	s.tornC.Add(int64(rec.TornTruncations))
	if n := len(order); n > 0 || rec.TornTruncations > 0 {
		log.Printf("taskserve: journal recovered %d jobs (%d requeued, %d lost-on-crash, %d torn-tail truncations)",
			n, requeued, lost, rec.TornTruncations)
	}
	return nil
}

// registerJournalCounters exposes the journal on the same registry as every
// other counter, so /metrics scrapes durability next to the idle-rate.
func (s *Server) registerJournalCounters(reg *counters.Registry) {
	s.recoveredC = counters.NewCumulative("/journal/recovered-jobs")
	s.tornC = counters.NewCumulative("/journal/torn-tail-truncations")
	reg.MustRegister(s.recoveredC)
	reg.MustRegister(s.tornC)
	reg.MustRegister(counters.NewDerived("/journal/appends", func() float64 {
		return float64(s.wal.Appends())
	}))
	reg.MustRegister(counters.NewDerived("/journal/fsyncs", func() float64 {
		return float64(s.wal.Fsyncs())
	}))
	reg.MustRegister(counters.NewDerived("/journal/group-commit-size", func() float64 {
		return float64(s.wal.LastGroupSize())
	}))
	reg.MustRegister(counters.NewDerived("/journal/appends-batched", func() float64 {
		return float64(s.wal.AppendsBatched())
	}))
}

// journalAppend marshals and appends one record. Callers on the admission
// path treat an error as "durability unavailable" and refuse the job; the
// rest are best-effort (a lost start/term record only widens the replay
// window, it never loses an acknowledged job).
func (s *Server) journalAppend(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.wal.Append(b)
	return err
}

// journalAdmit persists a job before its 202 is issued.
func (s *Server) journalAdmit(job *Job) error {
	spec, deadline, _, _, _ := job.journalState()
	var dl int64
	if !deadline.IsZero() {
		dl = deadline.UnixNano()
	}
	return s.journalAppend(walRecord{T: walAdmit, ID: job.ID(), Spec: &spec, Deadline: dl})
}

// journalAdmitBatch persists a batch of admissions as one vectored append:
// every record shares a single frame write and — under the always policy — a
// single fsync, so the durability cost of N admitted jobs is one group
// commit. Like journalAdmit it must succeed before any of the batch's 202s
// go out.
func (s *Server) journalAdmitBatch(jobs []*Job) error {
	payloads := make([][]byte, 0, len(jobs))
	for _, job := range jobs {
		spec, deadline, _, _, _ := job.journalState()
		var dl int64
		if !deadline.IsZero() {
			dl = deadline.UnixNano()
		}
		b, err := json.Marshal(walRecord{T: walAdmit, ID: job.ID(), Spec: &spec, Deadline: dl})
		if err != nil {
			return err
		}
		payloads = append(payloads, b)
	}
	_, err := s.wal.AppendBatch(payloads)
	return err
}

// journalDrop rescinds a journaled admission that never ran.
func (s *Server) journalDrop(id string) {
	if err := s.journalAppend(walRecord{T: walDrop, ID: id}); err != nil && err != journal.ErrKilled {
		log.Printf("taskserve: journal drop %s: %v", id, err)
	}
}

// journalStart records the queued→running transition.
func (s *Server) journalStart(job *Job) {
	_, _, _, _, grain := job.journalState()
	if err := s.journalAppend(walRecord{T: walStart, ID: job.ID(), Grain: grain}); err != nil && err != journal.ErrKilled {
		log.Printf("taskserve: journal start %s: %v", job.ID(), err)
	}
}

// journalTerm records a job's terminal verdict.
func (s *Server) journalTerm(job *Job) {
	_, _, state, errMsg, _ := job.journalState()
	if err := s.journalAppend(walRecord{T: walTerm, ID: job.ID(), State: state, Err: errMsg}); err != nil && err != journal.ErrKilled {
		log.Printf("taskserve: journal term %s: %v", job.ID(), err)
	}
}

// journalCompact writes a full-store snapshot, letting the journal delete
// every segment wholly below it. Called after TTL eviction (so the journal
// forgets what the store forgot) and on clean drain (so restart recovers to
// an empty non-terminal set without replay).
func (s *Server) journalCompact() {
	jobs := s.store.list()
	s.store.mu.Lock()
	nextID := s.store.nextID
	s.store.mu.Unlock()
	snap := walSnapshot{NextID: nextID, Jobs: make([]walSnapJob, 0, len(jobs))}
	for _, j := range jobs {
		spec, deadline, state, errMsg, grain := j.journalState()
		var dl int64
		if !deadline.IsZero() {
			dl = deadline.UnixNano()
		}
		snap.Jobs = append(snap.Jobs, walSnapJob{
			ID: j.ID(), Spec: spec, State: state, Err: errMsg, Grain: grain, Deadline: dl,
		})
	}
	b, err := json.Marshal(snap)
	if err != nil {
		log.Printf("taskserve: journal snapshot marshal: %v", err)
		return
	}
	if err := s.wal.Snapshot(b); err != nil && err != journal.ErrKilled {
		log.Printf("taskserve: journal snapshot: %v", err)
	}
}

// sweeper TTL-evicts terminal jobs and mirrors each eviction with a journal
// compaction, so neither the store nor the journal grows without bound on a
// long-lived daemon.
func (s *Server) sweeper() {
	defer s.sweepWG.Done()
	tick := s.cfg.TerminalTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			if n := s.store.evictTerminalOlderThan(time.Now().Add(-s.cfg.TerminalTTL)); n > 0 && s.wal != nil {
				s.journalCompact()
			}
		}
	}
}
