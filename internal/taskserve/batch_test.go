package taskserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// batchReply mirrors the POST /v1/jobs/batch response body.
type batchReply struct {
	Admitted int `json:"admitted"`
	Shed     int `json:"shed"`
	Results  []struct {
		Status     int      `json:"status"`
		Job        *JobView `json:"job"`
		Error      string   `json:"error"`
		RetryAfter int      `json:"retry_after_s"`
	} `json:"results"`
}

func postBatch(t *testing.T, base, body string) (*http.Response, batchReply) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs/batch", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad batch reply: %v", err)
	}
	return resp, out
}

// fibBatchBody renders {"jobs":[...]} of n fibonacci specs; keyPrefix != ""
// stamps per-item idempotency keys keyPrefix-0..n-1.
func fibBatchBody(n int, keyPrefix string) string {
	items := make([]string, n)
	for i := range items {
		if keyPrefix != "" {
			items[i] = fmt.Sprintf(`{"kind":"fibonacci","size":10,"idempotency_key":"%s-%d"}`, keyPrefix, i)
		} else {
			items[i] = `{"kind":"fibonacci","size":10}`
		}
	}
	return `{"jobs":[` + strings.Join(items, ",") + `]}`
}

// TestBatchSubmitHTTPPerItemResults covers the batch endpoint's per-item
// contract: valid items admit (and later replay by idempotency key), an
// invalid item gets its own 400 without failing the rest, and the batch
// counters account one batch with three jobs.
func TestBatchSubmitHTTPPerItemResults(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatchJobs = 8
	s, ts := newTestServer(t, cfg)

	body := `{"jobs":[` +
		`{"kind":"fibonacci","size":10,"idempotency_key":"bk-0"},` +
		`{"kind":"fibonacci","size":12,"idempotency_key":"bk-1"},` +
		`{"kind":"does-not-exist","size":10},` +
		`{"kind":"stencil1d","size":20000,"steps":2,"grain":1000,"idempotency_key":"bk-3"}]}`
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch with one bad item: status %d, want 202", resp.StatusCode)
	}
	if out.Admitted != 3 || out.Shed != 0 || len(out.Results) != 4 {
		t.Fatalf("admitted/shed/results = %d/%d/%d, want 3/0/4", out.Admitted, out.Shed, len(out.Results))
	}
	ids := map[int]string{}
	for i, r := range out.Results {
		if i == 2 {
			if r.Status != http.StatusBadRequest || r.Error == "" || r.Job != nil {
				t.Fatalf("invalid item result = %+v, want per-item 400 with error", r)
			}
			continue
		}
		if r.Status != http.StatusAccepted || r.Job == nil || r.Job.ID == "" {
			t.Fatalf("item %d result = %+v, want 202 with job view", i, r)
		}
		ids[i] = r.Job.ID
	}
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st != JobDone {
			t.Fatalf("batch job %s = %s, want done", id, st)
		}
	}

	// Re-posting the same batch replays the retained jobs by idempotency key:
	// same IDs, no second runs, and no new batch-path admissions counted.
	resp, again := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted || again.Admitted != 3 {
		t.Fatalf("replay batch: status %d admitted %d, want 202/3", resp.StatusCode, again.Admitted)
	}
	for i, id := range ids {
		if got := again.Results[i].Job.ID; got != id {
			t.Fatalf("replay item %d returned %s, want retained %s", i, got, id)
		}
	}
	if got := s.batchSubmitted.Raw(); got != 1 {
		t.Fatalf("/server/batch/submitted = %d, want 1 (replays admit nothing new)", got)
	}
	if got := s.batchJobs.Raw(); got != 3 {
		t.Fatalf("/server/batch/jobs = %d, want 3", got)
	}
	if got := s.batchSheds.Raw(); got != 0 {
		t.Fatalf("/server/batch/partial-sheds = %d, want 0", got)
	}

	// Protocol-level rejections: an empty batch and one over max_batch_jobs.
	if resp, _ := postBatch(t, ts.URL, `{"jobs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts.URL, fibBatchBody(9, "")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchPartialAdmissionPrefixAndPerItem429 is the tentpole's partial
// admission contract over HTTP: a batch straddling the queue's remaining
// capacity admits exactly the prefix that fits and sheds the suffix with
// per-item 429 + retry_after_s, 202 overall. A follow-up batch against the
// still-full queue sheds entirely with 429 + Retry-After at the top level.
func TestBatchPartialAdmissionPrefixAndPerItem429(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrentJobs = 1
	cfg.MaxQueuedJobs = 4
	s, ts := newTestServer(t, cfg)

	// A long job owns the only runner, so the queue's 4 slots are the exact
	// remaining capacity once it is running.
	resp, blocker := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 2_000_000, Steps: 20, Grain: 2000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: status %d", resp.StatusCode)
	}
	waitState(t, s, blocker.ID, JobRunning)

	resp, out := postBatch(t, ts.URL, fibBatchBody(10, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("straddling batch: status %d, want 202 (partial admission)", resp.StatusCode)
	}
	if out.Admitted != 4 || out.Shed != 6 {
		t.Fatalf("admitted/shed = %d/%d, want exactly the 4-slot prefix and 6 sheds", out.Admitted, out.Shed)
	}
	for i, r := range out.Results {
		if i < 4 {
			if r.Status != http.StatusAccepted || r.Job == nil {
				t.Fatalf("prefix item %d = %+v, want 202", i, r)
			}
			continue
		}
		if r.Status != http.StatusTooManyRequests || r.RetryAfter < 1 || !strings.Contains(r.Error, "queue full") {
			t.Fatalf("suffix item %d = %+v, want 429 + retry_after_s", i, r)
		}
	}
	if got := s.batchSubmitted.Raw(); got != 1 {
		t.Fatalf("/server/batch/submitted = %d, want 1", got)
	}
	if got := s.batchJobs.Raw(); got != 4 {
		t.Fatalf("/server/batch/jobs = %d, want 4", got)
	}
	if got := s.batchSheds.Raw(); got != 1 {
		t.Fatalf("/server/batch/partial-sheds = %d, want 1", got)
	}

	// Queue still full: an all-shed batch relays the shed status + Retry-After
	// at the top level so batch-oblivious backoff logic keeps working.
	resp, out = postBatch(t, ts.URL, fibBatchBody(2, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("full-queue batch shed without a Retry-After header")
	}
	if out.Admitted != 0 || out.Shed != 2 {
		t.Fatalf("full-queue batch admitted/shed = %d/%d, want 0/2", out.Admitted, out.Shed)
	}
	if got := s.batchSheds.Raw(); got != 1 {
		t.Fatalf("/server/batch/partial-sheds moved to %d on an all-shed batch, want 1", got)
	}
}

// waitState polls a job into the wanted state.
func waitState(t *testing.T, s *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Job(id); ok && j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestBatchCrashRestartReplaysExactlyAdmittedPrefix: every batch candidate is
// journaled in one group commit before the enqueue, and the shed suffix is
// rescinded with drop records — so a crash-restart recovers EXACTLY the
// admitted prefix, never a shed item the client was told to retry.
func TestBatchCrashRestartReplaysExactlyAdmittedPrefix(t *testing.T) {
	cfg := journalConfig(t)
	cfg.MaxConcurrentJobs = 1
	cfg.MaxQueuedJobs = 4
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	blocker, se := a.Submit(JobSpec{Kind: KindStencil, Size: 2_000_000, Steps: 20, Grain: 2000})
	if se != nil {
		t.Fatalf("blocker shed: %v", se.reason)
	}
	waitState(t, a, blocker.ID(), JobRunning)

	specs := make([]JobSpec, 7)
	for i := range specs {
		specs[i] = JobSpec{Kind: KindFibonacci, Size: 10, IdempotencyKey: fmt.Sprintf("pfx-%d", i)}
	}
	res := a.SubmitBatch(specs)
	var admitted []string
	for i, r := range res {
		if i < 4 {
			if r.job == nil {
				t.Fatalf("prefix item %d shed: %+v", i, r.shed)
			}
			admitted = append(admitted, r.job.ID())
			continue
		}
		if r.shed == nil || r.shed.status != http.StatusTooManyRequests || r.shed.retryAfter <= 0 {
			t.Fatalf("suffix item %d = %+v, want 429 shed", i, r)
		}
	}
	// All 7 candidates went through the single vectored append — durability
	// was bound before the queue cut decided who stays.
	if got := a.wal.AppendsBatched(); got != 7 {
		t.Fatalf("AppendsBatched = %d, want 7", got)
	}
	a.Crash()

	// Restart with queue headroom for the 5 recovered jobs (blocker + prefix);
	// the journal dir is what carries the state across.
	cfgB := cfg
	cfgB.MaxQueuedJobs = 8
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	want := map[string]bool{blocker.ID(): true}
	for _, id := range admitted {
		want[id] = true
	}
	got := b.Jobs()
	if len(got) != len(want) {
		t.Fatalf("recovered %d jobs, want exactly the admitted prefix + blocker (%d)", len(got), len(want))
	}
	for _, j := range got {
		if !want[j.ID()] {
			t.Fatalf("recovered job %s is not in the admitted prefix — a shed item was resurrected", j.ID())
		}
	}
	// Idempotency keys recovered with the prefix: resubmitting replays.
	rj, se := b.Submit(JobSpec{Kind: KindFibonacci, Size: 10, IdempotencyKey: "pfx-0"})
	if se != nil {
		t.Fatalf("replay submit shed: %v", se.reason)
	}
	if rj.ID() != admitted[0] {
		t.Fatalf("idempotency replay returned %s, want recovered %s", rj.ID(), admitted[0])
	}

	b.Start()
	for _, id := range append([]string{blocker.ID()}, admitted...) {
		if st := waitTerminal(t, b, id); !st.Terminal() {
			t.Fatalf("recovered job %s ended non-terminal: %s", id, st)
		}
	}
}
