// Package taskserve exposes the taskrt runtime as a long-running network
// service: JSON job submissions over HTTP become task groups on a shared
// runtime, with the paper's runtime-observable counters doing double duty —
// operators watch them on /debug, and the server itself acts on them for
// admission control (shed when the idle-rate says the runtime is
// overhead-bound, Eq. 1) and for live grain selection (jobs submitted
// without a grain get one steered by the adaptive tuner from recent
// counter intervals).
//
// Lifecycle: New → Start → serve Handler() → Drain (stop admitting, finish
// everything in flight, flush counters) → Close.
package taskserve

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"taskgrain/internal/adaptive"
	"taskgrain/internal/chaos"
	"taskgrain/internal/config"
	"taskgrain/internal/counters"
	"taskgrain/internal/journal"
	"taskgrain/internal/policyengine"
	"taskgrain/internal/taskrt"
	"taskgrain/internal/telemetry"
)

// Server is the task-execution service.
type Server struct {
	cfg     config.Server
	workers int

	rt    *taskrt.Runtime
	eng   *policyengine.Engine
	adm   *admission
	store *jobStore

	queue       chan *Job
	runnerWG    sync.WaitGroup
	queueMu     sync.Mutex // serializes queue sends against Drain's close
	draining    atomic.Bool
	started     atomic.Bool
	runningJobs atomic.Int64

	startTime time.Time

	// sampler feeds the telemetry ring behind GET /metrics and
	// /telemetry/*; the watchdog re-judges the idle-rate tolerance
	// threshold from its OnSample hook.
	sampler  *telemetry.Sampler
	watchdog *telemetry.Watchdog

	// Service counters, registered in the runtime's registry so /debug and
	// /metrics expose them next to the scheduler counters they react to.
	submitted  *counters.Cumulative
	completed  *counters.Cumulative
	failed     *counters.Cumulative
	cancelledC *counters.Cumulative
	shed       *counters.Cumulative
	traced     *counters.Cumulative

	// Batch-path counters: batches that admitted work, jobs admitted through
	// the batch path, and batches that were partially shed at the queue cut.
	batchSubmitted *counters.Cumulative
	batchJobs      *counters.Cumulative
	batchSheds     *counters.Cumulative

	// wal is the write-ahead job journal (nil when journal_dir is unset):
	// admissions are journaled before their 202 is issued, so every
	// acknowledged job survives a crash-restart of the daemon.
	wal        *journal.Journal
	recoveredC *counters.Cumulative
	tornC      *counters.Cumulative
	stopSweep  chan struct{}
	sweepOnce  sync.Once
	sweepWG    sync.WaitGroup
	walFinal   sync.Once
}

// New builds a server from the configuration. The runtime is owned by the
// server; Start launches it.
func New(cfg config.Server) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pol, err := cfg.PolicyKind()
	if err != nil {
		return nil, err
	}
	rtOpts := []taskrt.Option{taskrt.WithWorkers(workers), taskrt.WithPolicy(pol)}
	if cfg.ChaosSeed != 0 {
		rtOpts = append(rtOpts,
			taskrt.WithChaosHooks(chaos.NewSchedHooks(chaos.DefaultSchedConfig(cfg.ChaosSeed))))
		log.Printf("taskserve: chaos fault injection ARMED (seed %d) — wake delays, worker stalls, steal perturbation; not for production", cfg.ChaosSeed)
	}
	rt := taskrt.New(rtOpts...)

	s := &Server{
		cfg:        cfg,
		workers:    workers,
		rt:         rt,
		store:      newJobStore(),
		queue:      make(chan *Job, cfg.MaxQueuedJobs),
		submitted:  counters.NewCumulative("/server/jobs/submitted"),
		completed:  counters.NewCumulative("/server/jobs/completed"),
		failed:     counters.NewCumulative("/server/jobs/failed"),
		cancelledC: counters.NewCumulative("/server/jobs/cancelled"),
		shed:       counters.NewCumulative("/server/jobs/shed"),
		traced:     counters.NewCumulative("/server/trace/propagated"),
		stopSweep:  make(chan struct{}),

		batchSubmitted: counters.NewCumulative("/server/batch/submitted"),
		batchJobs:      counters.NewCumulative("/server/batch/jobs"),
		batchSheds:     counters.NewCumulative("/server/batch/partial-sheds"),
	}
	s.adm = newAdmission(cfg,
		func() int { return len(s.queue) },
		rt.Inflight,
	)

	reg := rt.Counters()

	// The control-plane engine owns the per-kind grain controllers: jobs read
	// their adaptive grain through it, per-job observations feed back through
	// it, and watchdog verdicts and mesh hints actuate through it — one
	// sample→decide→actuate path. Its recorder registers the
	// /control/{decisions,actuations,vetoes} counters on this registry.
	mode, err := cfg.ControlModeKind()
	if err != nil {
		return nil, err
	}
	eng, err := policyengine.New(policyengine.Options{
		Registry:   reg,
		MaxWorkers: workers,
		Mode:       mode,
		Actuators: policyengine.Actuators{
			SetActiveWorkers: rt.SetActiveWorkers,
			ActiveWorkers:    rt.ActiveWorkers,
		},
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	ctls := make(map[string]*adaptive.Controller, len(jobKinds))
	for _, kind := range jobKinds {
		lo, hi, start := grainBounds(kind, cfg.MaxJobSize)
		ctl, err := adaptive.NewController(adaptive.Config{
			MinPartition: lo,
			MaxPartition: hi,
			HighIdle:     cfg.HighIdle,
		}, start)
		if err != nil {
			return nil, fmt.Errorf("taskserve: grain controller for %s: %w", kind, err)
		}
		ctls[kind] = ctl
		eng.RegisterGrain(kind, ctl)
	}
	reg.MustRegister(s.submitted)
	reg.MustRegister(s.completed)
	reg.MustRegister(s.failed)
	reg.MustRegister(s.cancelledC)
	reg.MustRegister(s.shed)
	reg.MustRegister(s.traced)
	reg.MustRegister(s.batchSubmitted)
	reg.MustRegister(s.batchJobs)
	reg.MustRegister(s.batchSheds)
	reg.MustRegister(counters.NewDerived("/server/jobs/queued", func() float64 {
		return float64(len(s.queue))
	}))
	reg.MustRegister(counters.NewDerived("/server/tasks/inflight", func() float64 {
		return float64(rt.Inflight())
	}))
	// The remaining derived counters are the node's load surface for a mesh
	// gateway (internal/mesh): one heartbeat GET of /debug/counters yields
	// the interval idle-rate (Eq. 1, the routing load signal), the job-level
	// occupancy, and the drain state.
	reg.MustRegister(counters.NewDerived("/server/jobs/running", func() float64 {
		return float64(s.runningJobs.Load())
	}))
	reg.MustRegister(counters.NewDerived("/server/idle-rate", func() float64 {
		return s.adm.idleRate()
	}))
	reg.MustRegister(counters.NewDerived("/server/draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	}))
	// Per-kind adaptive grain, exported as /server/grain{<kind>}/current so a
	// mesh gateway's /mesh/metrics shows the cluster's grain distribution
	// (taskgrain_server_grain_current{node=...,instance="<kind>"}) straight
	// from the heartbeat snapshots — and so the gateway can compute a grain
	// consensus hint for joining nodes. The decisions{keep|grow|shrink}
	// counters expose each controller's steering activity the same way.
	for kind, ctl := range ctls {
		ctl := ctl
		reg.MustRegister(counters.NewDerived(
			fmt.Sprintf("/server/grain{%s}/current", kind),
			func() float64 { return float64(ctl.Grain()) },
		))
		reg.MustRegister(counters.NewDerived(
			fmt.Sprintf("/server/grain{%s}/decisions{keep}", kind),
			func() float64 { _, kept, _, _ := ctl.Stats(); return float64(kept) },
		))
		reg.MustRegister(counters.NewDerived(
			fmt.Sprintf("/server/grain{%s}/decisions{grow}", kind),
			func() float64 { _, _, grown, _ := ctl.Stats(); return float64(grown) },
		))
		reg.MustRegister(counters.NewDerived(
			fmt.Sprintf("/server/grain{%s}/decisions{shrink}", kind),
			func() float64 { _, _, _, shrunk := ctl.Stats(); return float64(shrunk) },
		))
	}

	// The watchdog re-states the admission controller's wall disambiguation
	// over the telemetry window: ShedMinTasks is an interval task floor, so
	// dividing by the sample interval converts it to the tasks-per-second
	// flow floor the window delta is compared against.
	s.watchdog = telemetry.NewWatchdog(telemetry.WatchdogConfig{
		Subject:     "taskgraind " + cfg.Addr,
		IdleCounter: "/server/idle-rate",
		FlowCounter: "/threads/count/cumulative",
		BusyCounter: "/server/tasks/inflight",
		HighIdle:    cfg.HighIdle,
		Window:      cfg.WatchdogWindow,
		FlowFloor:   cfg.ShedMinTasks / cfg.SampleInterval.Seconds(),
		Logf:        log.Printf,
	})
	// One sampling path: the telemetry sampler is the control plane's only
	// ticker. Each sample lands in the ring (history for /metrics and
	// /telemetry/*) and is then handed to the engine, which re-derives the
	// interval metrics, evaluates the policies — admission, throttling, and
	// the watchdog (whose grow/shrink verdicts become grain actions instead
	// of dead-end alert strings) — and actuates per control_mode. The cadence
	// is the faster of the two configured intervals so admission keeps its
	// ShedMinTasks-per-SampleInterval semantics.
	sampleEvery := cfg.SampleInterval
	if cfg.TelemetryInterval < sampleEvery {
		sampleEvery = cfg.TelemetryInterval
	}
	s.sampler = telemetry.NewSampler(reg, telemetry.Config{
		Interval: sampleEvery,
		Capacity: cfg.TelemetryRing,
		OnSample: func(ts telemetry.Sample) { s.eng.ObserveSample(ts) },
	})
	reg.MustRegister(counters.NewDerived("/telemetry/watchdog/active", func() float64 {
		if s.watchdog.Current().Active {
			return 1
		}
		return 0
	}))
	eng.AddPolicy(s.adm.policy())
	eng.AddPolicy(&policyengine.ThrottlePolicy{})
	eng.AddPolicy(&policyengine.WatchdogPolicy{
		Watchdog: s.watchdog,
		Ring:     func() *telemetry.Ring { return s.sampler.Ring() },
		Cooldown: cfg.WatchdogWindow,
	})

	// Journal recovery runs before Start: replayed non-terminal jobs land in
	// the queue and wait there until the runners launch.
	if cfg.JournalDir != "" {
		s.registerJournalCounters(reg)
		if err := s.setupJournal(); err != nil {
			return nil, err
		}
	}

	return s, nil
}

// Runtime returns the server's runtime (for tests and embedding).
func (s *Server) Runtime() *taskrt.Runtime { return s.rt }

// Engine returns the server's control-plane engine.
func (s *Server) Engine() *policyengine.Engine { return s.eng }

// Telemetry returns the server's counter sampler (for tests and embedding).
func (s *Server) Telemetry() *telemetry.Sampler { return s.sampler }

// Watchdog returns the server's idle-rate watchdog.
func (s *Server) Watchdog() *telemetry.Watchdog { return s.watchdog }

// Config returns the effective configuration.
func (s *Server) Config() config.Server { return s.cfg }

// Start launches the runtime, the control-plane sampling loop, and the job
// runners. The sampler's tick is the only clock: each sample feeds the
// telemetry ring and then the policy engine.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.startTime = time.Now()
	s.rt.Start()
	s.sampler.Start()
	for i := 0; i < s.cfg.MaxConcurrentJobs; i++ {
		s.runnerWG.Add(1)
		go s.runner()
	}
	if s.cfg.TerminalTTL > 0 {
		s.sweepWG.Add(1)
		go s.sweeper()
	}
}

// Submit validates, admits, and enqueues one job. It returns the stored job,
// or a shedError describing why the submission was refused.
//
// A spec carrying an idempotency key replays rather than re-executes: if a
// retained job was already admitted under the same key, that job is returned
// without a second admission — even while draining, so a mesh gateway
// resubmitting after a suspected node death never double-runs work the node
// in fact still holds.
func (s *Server) Submit(spec JobSpec) (*Job, *shedError) {
	spec = spec.withDefaults()
	if j, ok := s.store.getByKey(spec.IdempotencyKey); ok {
		return j, nil
	}
	if s.draining.Load() {
		s.shed.Inc()
		return nil, &shedError{status: 503, reason: "draining", retryAfter: s.cfg.RetryAfter}
	}
	if se := s.adm.check(); se != nil {
		s.shed.Inc()
		return nil, se
	}

	var deadline time.Time
	d := time.Duration(spec.DeadlineMillis) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	job, dup := s.store.add(spec, deadline)
	if dup {
		// A concurrent submission with the same idempotency key won the
		// store race; hand its job back instead of enqueueing a second run.
		return job, nil
	}

	// The admit record must be durable-bound before the 202 goes out: an
	// acknowledged job that the journal never saw would vanish in a crash,
	// which is precisely the ledger violation the journal exists to prevent.
	if s.wal != nil {
		if err := s.journalAdmit(job); err != nil {
			s.store.remove(job.ID())
			s.shed.Inc()
			return nil, &shedError{status: 503, reason: "journal unavailable", retryAfter: s.cfg.RetryAfter}
		}
	}

	// The admission check and this send race against concurrent submitters
	// and Drain; the mutex-guarded non-blocking send is the backstop that
	// keeps the queue bound exact and never blocks a request handler.
	s.queueMu.Lock()
	if s.draining.Load() {
		s.queueMu.Unlock()
		s.store.remove(job.ID())
		if s.wal != nil {
			s.journalDrop(job.ID())
		}
		s.shed.Inc()
		return nil, &shedError{status: 503, reason: "draining", retryAfter: s.cfg.RetryAfter}
	}
	select {
	case s.queue <- job:
		s.queueMu.Unlock()
	default:
		s.queueMu.Unlock()
		s.store.remove(job.ID())
		if s.wal != nil {
			s.journalDrop(job.ID())
		}
		s.shed.Inc()
		return nil, &shedError{
			status:     429,
			reason:     fmt.Sprintf("job queue full (limit %d)", s.cfg.MaxQueuedJobs),
			retryAfter: s.cfg.RetryAfter,
		}
	}
	s.submitted.Inc()
	if spec.TraceContext != "" {
		s.traced.Inc()
	}
	return job, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) { return s.store.get(id) }

// Jobs lists retained jobs in submission order.
func (s *Server) Jobs() []*Job { return s.store.list() }

// Cancel requests cancellation of a job by ID.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.store.get(id)
	if !ok {
		return nil, false
	}
	j.requestAbort("cancelled by client", JobCancelled)
	return j, true
}

// runner is one job-execution worker: it owns no tasks itself, it just
// drives one job at a time onto the shared runtime.
func (s *Server) runner() {
	defer s.runnerWG.Done()
	for job := range s.queue {
		s.runningJobs.Add(1)
		s.runJob(job)
		s.runningJobs.Add(-1)
	}
}

// runJob executes one admitted job end to end: grain choice, deadline arm,
// workload run, counter observation, adaptive feedback, terminal state.
func (s *Server) runJob(job *Job) {
	if job.State() != JobQueued {
		s.accountTerminal(job) // aborted while queued
		return
	}
	if !job.deadline.IsZero() && time.Now().After(job.deadline) {
		job.requestAbort("deadline exceeded before start", JobFailed)
		s.accountTerminal(job)
		return
	}

	spec := job.spec
	grain := spec.Grain
	source := "request"
	if grain == 0 {
		grain = clampGrain(spec.Kind, s.eng.Grain(spec.Kind), spec.Size)
		source = "adaptive"
	}
	if !job.startRunning(grain, source) {
		s.accountTerminal(job)
		return
	}
	if s.wal != nil {
		s.journalStart(job)
	}

	var timer *time.Timer
	if !job.deadline.IsZero() {
		timer = time.AfterFunc(time.Until(job.deadline), func() {
			job.requestAbort("deadline exceeded", JobFailed)
		})
	}

	prev := s.rt.Counters().Snapshot()
	res, err := runWorkload(s.rt, spec, grain, job.aborted)
	cur := s.rt.Counters().Snapshot()
	if timer != nil {
		timer.Stop()
	}

	if res != nil {
		obs := adaptive.ObservationFromSnapshots(prev, cur, grain, s.workers, res.generations)
		res.IdleRate = obs.IdleRate
		// The interval task count is polluted by concurrent jobs; the job's
		// own spawn count is exact, so prefer it for the slack signal.
		obs.Tasks = float64(res.Tasks) / float64(maxInt(res.generations, 1))
		if err == nil && !job.aborted() {
			_, dec := s.eng.ObserveGrain(spec.Kind, obs)
			job.setDecision(dec.String())
		}
	}

	job.finish(res, err)
	s.accountTerminal(job)
}

// accountTerminal bumps the outcome counter matching the job's terminal
// state and journals the verdict, exactly once per job (the runner and an
// abort can both get here). No-op for non-terminal states.
func (s *Server) accountTerminal(job *Job) {
	state := job.State()
	if !state.Terminal() || !job.terminalLogged.CompareAndSwap(false, true) {
		return
	}
	switch state {
	case JobDone:
		s.completed.Inc()
	case JobCancelled:
		s.cancelledC.Inc()
	case JobFailed:
		s.failed.Inc()
	}
	if s.wal != nil {
		s.journalTerm(job)
	}
}

// Drain performs the graceful-shutdown sequence: stop admitting (new
// submissions get 503 + Retry-After), let every already-admitted job finish,
// stop the sampling loop, wait for runtime quiescence, and return the final
// counter snapshot for flushing. Ctx bounds the wait; on expiry the drain
// keeps whatever completed and returns the context error.
func (s *Server) Drain(ctx context.Context) (counters.Snapshot, error) {
	if s.draining.CompareAndSwap(false, true) {
		s.queueMu.Lock()
		close(s.queue)
		s.queueMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.runnerWG.Wait()
		s.rt.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return s.rt.Counters().Snapshot(), ctx.Err()
	}
	s.sampler.Stop()
	s.sweepOnce.Do(func() { close(s.stopSweep) })
	s.sweepWG.Wait()
	// Flush durability last: with every runner finished the store is all
	// terminal, so the compaction snapshot + fsync leaves a journal that
	// recovers to an empty non-terminal set. Skipped after Crash — a killed
	// journal must stay frozen at the kill instant.
	if s.wal != nil && !s.wal.Killed() {
		s.walFinal.Do(func() {
			s.journalCompact()
			if err := s.wal.Close(); err != nil {
				log.Printf("taskserve: journal close: %v", err)
			}
		})
	}
	return s.rt.Counters().Snapshot(), nil
}

// Crash simulates a SIGKILL for crash-restart testing: the journal's durable
// state freezes at this instant (later appends, syncs, and snapshots fail
// with ErrKilled), then the server tears down its goroutines and runtime.
// Unlike Drain, nothing that happens after the kill reaches disk — a
// restarted server on the same journal dir sees exactly what a power loss
// would have left.
func (s *Server) Crash() {
	if s.wal != nil {
		s.wal.Kill()
	}
	_ = s.Close()
}

// Close drains (unbounded) and shuts the runtime down. After Close the
// server cannot be restarted.
func (s *Server) Close() error {
	_, err := s.Drain(context.Background())
	s.rt.Shutdown()
	return err
}

// Stats is the service-level status served by GET /v1/stats.
type Stats struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Workers        int               `json:"workers"`
	ActiveWorkers  int               `json:"active_workers"`
	Draining       bool              `json:"draining"`
	Jobs           map[JobState]int  `json:"jobs"`
	QueuedJobs     int               `json:"queued_jobs"`
	InflightTasks  int64             `json:"inflight_tasks"`
	Submitted      int64             `json:"submitted"`
	Completed      int64             `json:"completed"`
	Failed         int64             `json:"failed"`
	Cancelled      int64             `json:"cancelled"`
	Shed           int64             `json:"shed"`
	ShedByQueue    int64             `json:"shed_by_queue"`
	ShedByBacklog  int64             `json:"shed_by_backlog"`
	ShedByOverload int64             `json:"shed_by_overload"`
	IdleRate       float64           `json:"idle_rate"`
	ControlMode    string            `json:"control_mode"`
	AdaptiveGrains map[string]int    `json:"adaptive_grains"`
	GrainDecisions map[string][3]int `json:"grain_decisions"` // keep/grow/shrink
}

// Stats snapshots the service state.
func (s *Server) StatsSnapshot() Stats {
	kinds := s.eng.GrainKinds()
	grains := make(map[string]int, len(kinds))
	decisions := make(map[string][3]int, len(kinds))
	for _, kind := range kinds {
		grains[kind] = s.eng.Grain(kind)
		_, kept, grown, shrunk, _ := s.eng.GrainStats(kind)
		decisions[kind] = [3]int{kept, grown, shrunk}
	}
	sq, sb, so := s.adm.sheds()
	return Stats{
		UptimeSeconds:  time.Since(s.startTime).Seconds(),
		Workers:        s.workers,
		ActiveWorkers:  s.rt.ActiveWorkers(),
		Draining:       s.draining.Load(),
		Jobs:           s.store.counts(),
		QueuedJobs:     len(s.queue),
		InflightTasks:  s.rt.Inflight(),
		Submitted:      s.submitted.Raw(),
		Completed:      s.completed.Raw(),
		Failed:         s.failed.Raw(),
		Cancelled:      s.cancelledC.Raw(),
		Shed:           s.shed.Raw(),
		ShedByQueue:    sq,
		ShedByBacklog:  sb,
		ShedByOverload: so,
		IdleRate:       s.adm.idleRate(),
		ControlMode:    string(s.eng.Mode()),
		AdaptiveGrains: grains,
		GrainDecisions: decisions,
	}
}
