package taskserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"taskgrain/internal/introspect"
	"taskgrain/internal/telemetry"
	"taskgrain/internal/trace"
)

// maxBodyBytes bounds a job submission body; the spec is a handful of
// scalars, so anything bigger is a client bug or abuse.
const maxBodyBytes = 1 << 16

// maxBatchBodyBytes bounds a batch submission body: max_batch_jobs specs of
// a few hundred bytes each fit comfortably in 1 MiB.
const maxBatchBodyBytes = 1 << 20

// waitTimeoutDefault and waitTimeoutMax bound GET ?wait=true long-polls.
const (
	waitTimeoutDefault = 30 * time.Second
	waitTimeoutMax     = 5 * time.Minute
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs           submit a job (202, or 429/503 + Retry-After)
//	POST   /v1/jobs/batch     submit up to max_batch_jobs specs as one batch
//	                          ({"jobs":[spec,...]}); one admission check and
//	                          one journal group commit cover the batch, with
//	                          partial admission — per-item 202/429 results,
//	                          202 overall when anything was admitted
//	GET    /v1/jobs           list retained jobs
//	GET    /v1/jobs/{id}      job status; ?wait=true[&timeout=30s] long-polls
//	DELETE /v1/jobs/{id}      request cancellation
//	GET    /v1/stats          service stats
//	GET    /healthz           liveness + drain state (JSON {"status":"ok"}
//	                          or {"status":"draining"}, always 200 — the mesh
//	                          registry reads the body to stop routing to a
//	                          draining node before a submit bounces off 503)
//	GET    /metrics           the live registry as OpenMetrics text
//	GET    /telemetry/alerts  idle-rate watchdog verdict (JSON)
//	GET    /telemetry/series  ring time series; ?name=/server/idle-rate
//	                          [&n=60][&window=2s] adds a window delta/rate
//	GET    /control/decisions control-plane decision log (mode + entries)
//	POST   /control/hint      externally push per-kind grains
//	                          ({"grains":{"stencil1d":4096},"source":"..."});
//	                          each hint applies, stays advisory, or is vetoed
//	                          per the engine's guardrails
//	/debug/...                the introspect counter surface (live registry)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if s.draining.Load() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatsSnapshot())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /telemetry/alerts", s.handleAlerts)
	mux.HandleFunc("GET /telemetry/series", s.handleSeries)
	mux.HandleFunc("GET /control/decisions", s.handleControlDecisions)
	mux.HandleFunc("POST /control/hint", s.handleControlHint)
	mux.Handle("/debug/", http.StripPrefix("/debug", introspect.NewHandler(s.rt.Counters())))
	return mux
}

// handleMetrics renders every registered counter as OpenMetrics text, the
// node's own listen address as the node label.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	pts := telemetry.PointsFromRegistry(s.rt.Counters(), map[string]string{"node": s.cfg.Addr})
	if err := telemetry.WriteOpenMetrics(&b, pts); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	_, _ = b.WriteTo(w)
}

// handleControlDecisions serves the control plane's decision log: the mode
// the engine runs under and every recorded actuation/advisory/veto, oldest
// first.
func (s *Server) handleControlDecisions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":      string(s.eng.Mode()),
		"decisions": s.eng.Decisions(),
	})
}

// handleControlHint accepts externally pushed per-kind grains — a mesh
// gateway's cluster consensus, or an operator's manual steer. Every hint is
// recorded; whether it actuates is the engine's call (mode, guardrails).
func (s *Server) handleControlHint(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Grains map[string]int `json:"grains"`
		Source string         `json:"source"`
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad hint body: "+err.Error())
		return
	}
	if len(req.Grains) == 0 {
		writeError(w, http.StatusBadRequest, "hint carries no grains")
		return
	}
	source := req.Source
	if source == "" {
		source = "external"
	}
	applied := map[string]int{}
	vetoed := map[string]string{}
	for kind, grain := range req.Grains {
		if ok, reason := s.eng.ApplyHint(kind, grain, source); ok {
			applied[kind] = s.eng.Grain(kind)
		} else {
			vetoed[kind] = reason
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":    string(s.eng.Mode()),
		"applied": applied,
		"vetoed":  vetoed,
	})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"alerts": []telemetry.Alert{s.watchdog.Current()},
	})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?name= counter path (e.g. /server/idle-rate)")
		return
	}
	n := 60
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "bad n "+strconv.Quote(v))
			return
		}
		n = parsed
	}
	ring := s.sampler.Ring()
	out := map[string]any{
		"name":        name,
		"interval_ns": s.sampler.Interval(),
		"points":      ring.Series(name, n),
	}
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad window "+strconv.Quote(v)+" (want a Go duration, e.g. 2s)")
			return
		}
		if delta, elapsed, ok := ring.Delta(name, d); ok {
			out["window_delta"] = delta
			out["window_elapsed_ns"] = elapsed
		}
		if rate, ok := ring.Rate(name, d); ok {
			out["window_rate_per_sec"] = rate
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	// The Taskgrain-Trace header is the canonical carrier of the cross-hop
	// trace identity (the gateway sets it on every forwarded hop); a valid
	// header overrides any body-carried context. Malformed headers leave
	// the job untraced rather than failing the submission.
	if sc, ok := trace.ParseSpanContext(r.Header.Get(trace.Header)); ok {
		spec.TraceContext = sc.String()
	}
	spec = spec.withDefaults()
	if err := spec.Validate(s.cfg.MaxJobSize); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, shed := s.Submit(spec)
	if shed != nil {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(shed.retryAfter)))
		writeError(w, shed.status, shed.reason)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

// batchItemView is one per-item result of POST /v1/jobs/batch, index-aligned
// with the request's jobs array.
type batchItemView struct {
	Status     int      `json:"status"`
	Job        *JobView `json:"job,omitempty"`
	Error      string   `json:"error,omitempty"`
	RetryAfter int      `json:"retry_after_s,omitempty"`
}

// handleSubmitBatch serves POST /v1/jobs/batch: decode {"jobs":[spec,...]},
// admit the batch through one SubmitBatch call, and render per-item results.
// A spec that fails validation gets a per-item 400 without failing the rest
// of the batch. The overall status is 202 when at least one item was
// admitted; otherwise the first shed's status with its Retry-After relayed,
// so a batch-oblivious client's backoff logic still works.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Jobs []JobSpec `json:"jobs"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch: %v", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch (want {\"jobs\":[spec,...]})")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds max_batch_jobs %d", len(req.Jobs), s.cfg.MaxBatchJobs))
		return
	}

	// The trace header covers items that carry no body trace_context of
	// their own — a gateway forwarding a batch embeds per-item contexts in
	// the specs, while a plain client's single header traces the whole batch.
	headerSC, headerOK := trace.ParseSpanContext(r.Header.Get(trace.Header))

	items := make([]batchItemView, len(req.Jobs))
	valid := make([]int, 0, len(req.Jobs))
	specs := make([]JobSpec, 0, len(req.Jobs))
	for i := range req.Jobs {
		spec := req.Jobs[i]
		if headerOK && spec.TraceContext == "" {
			spec.TraceContext = headerSC.String()
		}
		spec = spec.withDefaults()
		if err := spec.Validate(s.cfg.MaxJobSize); err != nil {
			items[i] = batchItemView{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		valid = append(valid, i)
		specs = append(specs, spec)
	}

	admitted, shedCount := 0, 0
	if len(specs) > 0 {
		for k, res := range s.SubmitBatch(specs) {
			i := valid[k]
			switch {
			case res.job != nil:
				view := res.job.View()
				items[i] = batchItemView{Status: http.StatusAccepted, Job: &view}
				admitted++
			default:
				items[i] = batchItemView{
					Status:     res.shed.status,
					Error:      res.shed.reason,
					RetryAfter: retryAfterSeconds(res.shed.retryAfter),
				}
				shedCount++
			}
		}
	}

	status := http.StatusAccepted
	if admitted == 0 {
		status = http.StatusBadRequest
		for _, it := range items {
			if it.Status == http.StatusTooManyRequests || it.Status == http.StatusServiceUnavailable {
				status = it.Status
				w.Header().Set("Retry-After", strconv.Itoa(it.RetryAfter))
				break
			}
		}
	}
	writeJSON(w, status, map[string]any{
		"admitted": admitted,
		"shed":     shedCount,
		"results":  items,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	if wantWait(r) {
		timeout, err := waitTimeout(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-job.Done():
		case <-t.C:
			// Not an error: return the current (non-terminal) view so the
			// client can re-poll.
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// wantWait reports whether ?wait=true (or =1) was requested.
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "true", "1":
		return true
	}
	return false
}

// waitTimeout parses ?timeout= (Go duration syntax), applying the default
// and ceiling.
func waitTimeout(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("timeout")
	if v == "" {
		return waitTimeoutDefault, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, errors.New("bad timeout " + strconv.Quote(v) + " (want a Go duration, e.g. 30s)")
	}
	if d <= 0 || d > waitTimeoutMax {
		return 0, fmt.Errorf("timeout %v out of (0,%v]", d, waitTimeoutMax)
	}
	return d, nil
}

// retryAfterSeconds renders a duration as the integral seconds Retry-After
// requires, rounding sub-second hints up so clients actually back off.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // network write errors are the client's problem
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
