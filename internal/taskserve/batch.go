// Batched submission: POST /v1/jobs/batch admits up to max_batch_jobs specs
// through ONE admission check and ONE vectored journal append, amortizing the
// serving layer's per-request overhead the same way SpawnBatch amortizes the
// runtime's per-spawn overhead (Eq. 3/4: a fixed cost paid once per batch
// instead of once per job moves the effective minimum grain left).
//
// Admission is partial by design: the batch admits a prefix bounded by the
// queue's remaining capacity and sheds the suffix with per-item 429 +
// Retry-After, so one oversized batch degrades into "some work now, retry the
// rest" instead of all-or-nothing.
package taskserve

import (
	"fmt"
	"time"
)

// batchItem is one per-spec outcome of SubmitBatch: exactly one of job
// (admitted, or replayed via idempotency key) or shed is set.
type batchItem struct {
	job  *Job
	shed *shedError
}

// SubmitBatch validates, admits, and enqueues a batch of jobs under one
// admission check and one journal group commit. Results are index-aligned
// with specs. Semantics per item match Submit exactly — idempotent replays
// return the retained job even while draining, admitted jobs are journaled
// before the call returns, and a full queue sheds with 429 — but the
// admission check, the journal fsync, and the queue-mutex acquisition are
// each paid once for the whole batch.
func (s *Server) SubmitBatch(specs []JobSpec) []batchItem {
	results := make([]batchItem, len(specs))

	// Idempotency replays resolve first, without admission — a mesh gateway
	// re-forwarding a batch after a timeout must get the jobs the node
	// already holds, never a second run.
	fresh := make([]int, 0, len(specs))
	for i := range specs {
		specs[i] = specs[i].withDefaults()
		if j, ok := s.store.getByKey(specs[i].IdempotencyKey); ok {
			results[i] = batchItem{job: j}
			continue
		}
		fresh = append(fresh, i)
	}
	if len(fresh) == 0 {
		return results
	}

	shedAll := func(se *shedError, idxs []int) {
		for _, i := range idxs {
			results[i] = batchItem{shed: se}
			s.shed.Inc()
		}
	}
	if s.draining.Load() {
		shedAll(&shedError{status: 503, reason: "draining", retryAfter: s.cfg.RetryAfter}, fresh)
		return results
	}
	// One admission check covers the batch: the queue-capacity prefix cut
	// below is exact regardless, and the idle-rate/backlog signals move on
	// sampling intervals far coarser than one batch.
	if se := s.adm.check(); se != nil {
		shedAll(se, fresh)
		return results
	}

	added := make([]int, 0, len(fresh))
	jobs := make([]*Job, 0, len(fresh))
	for _, i := range fresh {
		var deadline time.Time
		d := time.Duration(specs[i].DeadlineMillis) * time.Millisecond
		if d == 0 {
			d = s.cfg.DefaultDeadline
		}
		if d > 0 {
			deadline = time.Now().Add(d)
		}
		job, dup := s.store.add(specs[i], deadline)
		results[i] = batchItem{job: job}
		if dup {
			continue // a concurrent duplicate key won the store race; replay
		}
		added = append(added, i)
		jobs = append(jobs, job)
	}
	if len(added) == 0 {
		return results
	}

	// One vectored append journals every admit record in the batch — one
	// group-commit fsync for N jobs, the tentpole amortization. As on the
	// single path, durability must be bound before any 202 goes out.
	if s.wal != nil {
		if err := s.journalAdmitBatch(jobs); err != nil {
			for k, i := range added {
				s.store.remove(jobs[k].ID())
				results[i] = batchItem{shed: &shedError{
					status: 503, reason: "journal unavailable", retryAfter: s.cfg.RetryAfter,
				}}
				s.shed.Inc()
			}
			return results
		}
	}

	// One queue-mutex acquisition enqueues the whole batch. The non-blocking
	// sends keep the MaxQueuedJobs bound exact: the first full send marks the
	// partial-admission cut — that item and the entire suffix shed, because a
	// queue that just refused item k cannot have room for item k+1 either.
	admitted := 0
	s.queueMu.Lock()
	if s.draining.Load() {
		s.queueMu.Unlock()
		for k, i := range added {
			s.store.remove(jobs[k].ID())
			if s.wal != nil {
				s.journalDrop(jobs[k].ID())
			}
			results[i] = batchItem{shed: &shedError{status: 503, reason: "draining", retryAfter: s.cfg.RetryAfter}}
			s.shed.Inc()
		}
		return results
	}
	cut := len(added)
sends:
	for k := range added {
		select {
		case s.queue <- jobs[k]:
			admitted++
		default:
			cut = k
			break sends
		}
	}
	s.queueMu.Unlock()

	for k := cut; k < len(added); k++ {
		i := added[k]
		s.store.remove(jobs[k].ID())
		if s.wal != nil {
			s.journalDrop(jobs[k].ID())
		}
		results[i] = batchItem{shed: &shedError{
			status:     429,
			reason:     fmt.Sprintf("job queue full (limit %d)", s.cfg.MaxQueuedJobs),
			retryAfter: s.cfg.RetryAfter,
		}}
		s.shed.Inc()
	}
	for k := 0; k < cut; k++ {
		s.submitted.Inc()
		if jobs[k].spec.TraceContext != "" {
			s.traced.Inc()
		}
	}

	if admitted > 0 {
		s.batchSubmitted.Inc()
		s.batchJobs.Add(int64(admitted))
	}
	if admitted > 0 && admitted < len(added) {
		s.batchSheds.Inc()
	}
	return results
}
