package taskserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"taskgrain/internal/policyengine"
)

// controlDecisionsDoc is the GET /control/decisions response shape.
type controlDecisionsDoc struct {
	Mode      string                  `json:"mode"`
	Decisions []policyengine.Decision `json:"decisions"`
}

// postHint POSTs a grain hint and decodes the verdict map.
func postHint(t *testing.T, base string, grains map[string]int, source string) (status int, applied map[string]int, vetoed map[string]string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"grains": grains, "source": source})
	resp, err := http.Post(base+"/control/hint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Applied map[string]int    `json:"applied"`
		Vetoed  map[string]string `json:"vetoed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatal(err)
	}
	return resp.StatusCode, v.Applied, v.Vetoed
}

// getControlDecisions fetches and decodes the node's decision log.
func getControlDecisions(t *testing.T, base string) controlDecisionsDoc {
	t.Helper()
	resp, err := http.Get(base + "/control/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /control/decisions: %d", resp.StatusCode)
	}
	var doc controlDecisionsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestControlHintEndToEnd drives the hint half of the control plane over
// HTTP: a fresh node accepts an external grain, the decision log and
// /control counters record it, and once the node's own controller has
// walked enough observations further hints are vetoed.
func TestControlHintEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	// A fresh controller (zero observations) accepts the hint.
	status, applied, vetoed := postHint(t, ts.URL, map[string]int{KindStencil: 4096}, "test-steer")
	if status != http.StatusOK {
		t.Fatalf("hint: status %d", status)
	}
	if applied[KindStencil] != 4096 || len(vetoed) != 0 {
		t.Fatalf("hint verdict applied=%v vetoed=%v, want stencil1d=4096 applied", applied, vetoed)
	}
	if g := s.Engine().Grain(KindStencil); g != 4096 {
		t.Fatalf("grain after hint = %d, want 4096", g)
	}

	// Unknown kinds and invalid grains are vetoed, not applied.
	if _, _, v := postHint(t, ts.URL, map[string]int{"bogus": 10}, ""); v["bogus"] == "" {
		t.Error("unknown kind not vetoed")
	}
	if _, _, v := postHint(t, ts.URL, map[string]int{KindStencil: 0}, ""); v[KindStencil] == "" {
		t.Error("zero grain not vetoed")
	}

	// Walk the controller past the hint guardrail with real adaptive jobs.
	for i := 0; i < 3; i++ {
		resp, v := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 20_000, Steps: 2})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		if got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s"); got.State != JobDone {
			t.Fatalf("job %d: state %s, error %q", i, got.State, got.Error)
		}
	}
	_, applied, vetoed = postHint(t, ts.URL, map[string]int{KindStencil: 128}, "late-steer")
	if len(applied) != 0 || !strings.Contains(vetoed[KindStencil], "observations") {
		t.Fatalf("late hint applied=%v vetoed=%v, want observation-guardrail veto", applied, vetoed)
	}

	// The decision log saw both the actuated hint and the veto.
	doc := getControlDecisions(t, ts.URL)
	if doc.Mode != string(policyengine.ModeActuate) {
		t.Errorf("decision log mode = %q, want actuate", doc.Mode)
	}
	var actuated, vetoCount int
	for _, d := range doc.Decisions {
		if d.Policy != "hint" {
			continue
		}
		switch d.Mode {
		case policyengine.DecisionActuated:
			actuated++
		case policyengine.DecisionVetoed:
			vetoCount++
		}
	}
	if actuated < 1 || vetoCount < 3 {
		t.Errorf("hint decisions actuated=%d vetoed=%d, want >=1 and >=3", actuated, vetoCount)
	}

	// The /control counters ride the same registry the rest of telemetry
	// uses, so they show up at /debug/counters.
	snap := s.Runtime().Counters().Snapshot()
	if snap.Get(policyengine.ControlDecisions) < 4 {
		t.Errorf("%s = %v, want >= 4", policyengine.ControlDecisions, snap.Get(policyengine.ControlDecisions))
	}
	if snap.Get(policyengine.ControlVetoes) < 3 {
		t.Errorf("%s = %v, want >= 3", policyengine.ControlVetoes, snap.Get(policyengine.ControlVetoes))
	}

	// Malformed hints are 400s.
	resp, err := http.Post(ts.URL+"/control/hint", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated hint: status %d, want 400", resp.StatusCode)
	}
	if st, _, _ := postHint(t, ts.URL, nil, ""); st != http.StatusBadRequest {
		t.Errorf("empty hint: status %d, want 400", st)
	}
}

// TestControlAdvisoryMode: under control_mode=advisory the engine records
// what it would have done but actuates nothing — hints are held, the grain
// stays put, and the stats document says so.
func TestControlAdvisoryMode(t *testing.T) {
	cfg := testConfig()
	cfg.ControlMode = string(policyengine.ModeAdvisory)
	s, ts := newTestServer(t, cfg)

	before := s.Engine().Grain(KindStencil)
	_, applied, vetoed := postHint(t, ts.URL, map[string]int{KindStencil: 4096}, "mesh-consensus")
	if len(applied) != 0 || vetoed[KindStencil] != "control_mode=advisory" {
		t.Fatalf("advisory hint applied=%v vetoed=%v", applied, vetoed)
	}
	if got := s.Engine().Grain(KindStencil); got != before {
		t.Fatalf("advisory mode moved the grain: %d -> %d", before, got)
	}

	doc := getControlDecisions(t, ts.URL)
	if doc.Mode != string(policyengine.ModeAdvisory) {
		t.Errorf("decision log mode = %q, want advisory", doc.Mode)
	}
	found := false
	for _, d := range doc.Decisions {
		if d.Policy == "hint" && d.Mode == policyengine.DecisionAdvisory {
			found = true
		}
	}
	if !found {
		t.Error("advisory hint not recorded in the decision log")
	}
	if got := s.StatsSnapshot().ControlMode; got != string(policyengine.ModeAdvisory) {
		t.Errorf("stats control_mode = %q, want advisory", got)
	}
}

// TestControlConvergenceUnderLoad is the e2e convergence check: a live node
// under real adaptive load walks its stencil grain with every decision
// accounted for — the per-kind decisions{keep|grow|shrink} split matches the
// observation count, the grain stays inside the kind's bounds, and the
// decision log endpoint serves throughout.
func TestControlConvergenceUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	const jobs = 6

	for i := 0; i < jobs; i++ {
		resp, v := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 40_000, Steps: 2})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		if got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s"); got.State != JobDone {
			t.Fatalf("job %d: state %s, error %q", i, got.State, got.Error)
		}
	}

	obs, kept, grown, shrunk, ok := s.Engine().GrainStats(KindStencil)
	if !ok || obs != jobs {
		t.Fatalf("stencil observations = %d (ok=%v), want %d", obs, ok, jobs)
	}
	if kept+grown+shrunk != obs {
		t.Errorf("decision split %d+%d+%d != %d observations", kept, grown, shrunk, obs)
	}

	// The same split is published as registry counters for the mesh and any
	// scraper to read.
	resp, err := http.Get(ts.URL + "/debug/counters?prefix=/server/grain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, leaf := range []string{"keep", "grow", "shrink"} {
		sum += snap[fmt.Sprintf("/server/grain{%s}/decisions{%s}", KindStencil, leaf)]
	}
	if sum != float64(obs) {
		t.Errorf("exported decision counters sum to %v, want %d", sum, obs)
	}

	// The converged grain is a legal operating point for the kind.
	lo, hi, _ := grainBounds(KindStencil, s.Config().MaxJobSize)
	cur := int(snap[fmt.Sprintf("/server/grain{%s}/current", KindStencil)])
	if cur < lo || cur > hi {
		t.Errorf("stencil grain %d outside bounds [%d, %d]", cur, lo, hi)
	}

	doc := getControlDecisions(t, ts.URL)
	if doc.Mode != string(policyengine.ModeActuate) {
		t.Errorf("decision log mode = %q, want actuate", doc.Mode)
	}
	// Any grow/shrink the walk took must have been logged as an actuated
	// adaptive decision; keeps are deliberately not logged.
	logged := 0
	for _, d := range doc.Decisions {
		if d.Policy == "adaptive" && d.Mode == policyengine.DecisionActuated {
			logged++
		}
	}
	if logged != grown+shrunk {
		t.Errorf("logged adaptive decisions = %d, want grow+shrink = %d", logged, grown+shrunk)
	}
}
