package taskserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"taskgrain/internal/config"
	"taskgrain/internal/policyengine"
)

// testConfig returns a small, fast server configuration for tests.
func testConfig() config.Server {
	cfg := config.DefaultServer()
	cfg.Workers = 2
	cfg.MaxQueuedJobs = 8
	cfg.MaxConcurrentJobs = 2
	cfg.SampleInterval = 5 * time.Millisecond
	cfg.RetryAfter = time.Second
	// Make admission deterministic for the functional tests: the idle-rate
	// overload signal depends on host timing, so the task-flow floor is set
	// unreachably high here and the signal is exercised directly in
	// TestOverloadSheddingViaIdleRateSignal.
	cfg.ShedMinTasks = 1e12
	return cfg
}

// newTestServer starts a Server plus its httptest frontend.
func newTestServer(t *testing.T, cfg config.Server) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base string, spec JobSpec) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job view %q: %v", raw, err)
		}
	}
	return resp, v
}

func getJob(t *testing.T, base, id, query string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET job %s: %d %s", id, resp.StatusCode, raw)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEndToEndJobsComplete(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	specs := []JobSpec{
		{Kind: KindStencil, Size: 20_000, Steps: 3, Grain: 1000},
		{Kind: KindFibonacci, Size: 24, Grain: 12},
		{Kind: KindIrregular, Size: 50_000, Grain: 500, Seed: 7},
	}
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		resp, v := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %+v: status %d", spec, resp.StatusCode)
		}
		if v.ID == "" || v.State != JobQueued && v.State != JobRunning && v.State != JobDone {
			t.Fatalf("submit view: %+v", v)
		}
		ids = append(ids, v.ID)
	}
	for i, id := range ids {
		v := getJob(t, ts.URL, id, "?wait=true&timeout=30s")
		if v.State != JobDone {
			t.Fatalf("job %s (%+v): state %s, error %q", id, specs[i], v.State, v.Error)
		}
		if v.Result == nil || v.Result.Tasks == 0 {
			t.Fatalf("job %s: missing result: %+v", id, v)
		}
		if v.GrainSource != "request" || v.Grain != specs[i].Grain {
			t.Fatalf("job %s: grain %d source %q, want %d/request", id, v.Grain, v.GrainSource, specs[i].Grain)
		}
	}

	// fib(24) = 46368; the checksum must be exact.
	fib := getJob(t, ts.URL, ids[1], "")
	if fib.Result.Checksum != 46368 {
		t.Fatalf("fib(24) = %v, want 46368", fib.Result.Checksum)
	}
}

func TestAdaptiveGrainChosenAndReported(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// No grain in the spec: the server must choose one and say so.
	resp, v := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 30_000, Steps: 2})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=30s")
	if got.State != JobDone {
		t.Fatalf("state %s, error %q", got.State, got.Error)
	}
	if got.GrainSource != "adaptive" {
		t.Fatalf("grain_source = %q, want adaptive", got.GrainSource)
	}
	if got.Grain < 1 || got.Grain > 30_000 {
		t.Fatalf("chosen grain %d out of job range", got.Grain)
	}
	if got.Decision == "" {
		t.Fatalf("adaptive_decision missing: %+v", got)
	}
}

func TestAdaptiveGrainConvergesAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job convergence is slow")
	}
	s, ts := newTestServer(t, testConfig())

	// A stream of adaptive stencil jobs; the per-kind controller must move
	// the grain off its start value in some direction as feedback arrives.
	start := s.Engine().Grain(KindStencil)
	moved := false
	for i := 0; i < 8; i++ {
		resp, v := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 40_000, Steps: 3})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=30s")
		if got.State != JobDone {
			t.Fatalf("job %d: %s (%s)", i, got.State, got.Error)
		}
		if s.Engine().Grain(KindStencil) != start {
			moved = true
		}
	}
	obs, _, _, _, _ := s.Engine().GrainStats(KindStencil)
	if obs == 0 {
		t.Fatal("no observations reached the grain controller")
	}
	_ = moved // movement depends on host timing; observations must flow regardless
}

func TestBurstShedsWith429AndDrainDropsNothing(t *testing.T) {
	cfg := testConfig()
	cfg.MaxQueuedJobs = 2
	cfg.MaxConcurrentJobs = 1
	s, ts := newTestServer(t, cfg)

	// Burst far beyond queue capacity. Runner concurrency 1 and non-trivial
	// jobs keep the queue occupied.
	var (
		mu       sync.Mutex
		admitted []string
		shed     int
	)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := JobSpec{Kind: KindIrregular, Size: 200_000, Grain: 500}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var v JobView
				if err := json.Unmarshal(raw, &v); err != nil {
					t.Errorf("bad view: %v", err)
					return
				}
				admitted = append(admitted, v.ID)
			case http.StatusTooManyRequests:
				shed++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()
	if shed == 0 {
		t.Fatal("burst of 30 over a 2-deep queue shed nothing")
	}
	if len(admitted) == 0 {
		t.Fatal("burst admitted nothing")
	}

	// SIGTERM-style drain: every admitted job must reach a terminal state —
	// zero dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	snap, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if snap == nil {
		t.Fatal("drain returned no counter snapshot")
	}
	for _, id := range admitted {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("admitted job %s vanished", id)
		}
		if st := j.State(); !st.Terminal() {
			t.Fatalf("admitted job %s not terminal after drain: %s", id, st)
		}
		if st := j.State(); st != JobDone {
			t.Fatalf("admitted job %s: %s, want done", id, st)
		}
	}

	// Post-drain submissions are refused with 503 + Retry-After.
	resp, _ := postJob(t, ts.URL, JobSpec{Kind: KindFibonacci, Size: 10})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrentJobs = 1
	cfg.MaxQueuedJobs = 8
	_, ts := newTestServer(t, cfg)

	// A long job to occupy the single runner, then a queued victim.
	_, long := postJob(t, ts.URL, JobSpec{Kind: KindStencil, Size: 2_000_000, Steps: 20, Grain: 2000})
	resp, victim := postJob(t, ts.URL, JobSpec{Kind: KindFibonacci, Size: 20})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("victim submit: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	v := getJob(t, ts.URL, victim.ID, "?wait=true&timeout=30s")
	if v.State != JobCancelled {
		t.Fatalf("victim state %s, want cancelled", v.State)
	}

	// Cancel the running job too: it must drain to cancelled well before a
	// full 20-step 2M-point run would finish.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+long.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	v = getJob(t, ts.URL, long.ID, "?wait=true&timeout=60s")
	if v.State != JobCancelled {
		t.Fatalf("long job state %s (%s), want cancelled", v.State, v.Error)
	}

	// Cancelling an unknown job is a 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-99999", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %d", dresp.StatusCode)
	}
}

func TestDeadlineExpiresJob(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrentJobs = 1
	_, ts := newTestServer(t, cfg)

	resp, v := postJob(t, ts.URL, JobSpec{
		Kind: KindStencil, Size: 2_000_000, Steps: 50, Grain: 2000, DeadlineMillis: 50,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := getJob(t, ts.URL, v.ID, "?wait=true&timeout=60s")
	if got.State != JobFailed {
		t.Fatalf("state %s, want failed (deadline)", got.State)
	}
	if got.Error == "" {
		t.Fatal("deadline failure carries no error")
	}
}

func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	bad := []string{
		`{"kind":"quicksort","size":10}`,
		`{"kind":"stencil1d","size":0}`,
		`{"kind":"stencil1d","size":100,"grain":200}`,
		`{"kind":"fibonacci","size":50,"grain":2}`, // exponential tree span
		`{"kind":"fibonacci","size":60}`,
		`{"kind":"stencil1d","size":100,"unknown_field":1}`,
		`not json`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatsAndDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, v := postJob(t, ts.URL, JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	getJob(t, ts.URL, v.ID, "?wait=true&timeout=30s")

	var stats Stats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted < 1 || stats.Completed < 1 {
		t.Fatalf("stats did not count the job: %+v", stats)
	}
	if stats.AdaptiveGrains[KindStencil] == 0 {
		t.Fatalf("stats missing adaptive grains: %+v", stats)
	}

	// The introspect surface is mounted at /debug with live counters,
	// including the server's own.
	dresp, err := http.Get(ts.URL + "/debug/counters?prefix=/server/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var counterMap map[string]float64
	if err := json.NewDecoder(dresp.Body).Decode(&counterMap); err != nil {
		t.Fatal(err)
	}
	if counterMap["/server/jobs/submitted"] < 1 {
		t.Fatalf("/debug/counters missing server counters: %v", counterMap)
	}
	if _, ok := counterMap["/server/jobs/completed"]; !ok {
		t.Fatalf("expected /server/jobs/completed in %v", counterMap)
	}

	// And the runtime's own idle-rate is there too.
	cresp, err := http.Get(ts.URL + "/debug/counter?name=/threads/idle-rate")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/counter idle-rate: %d", cresp.StatusCode)
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		resp, _ := postJob(t, ts.URL, JobSpec{Kind: KindFibonacci, Size: 15, Grain: 8})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(out.Jobs))
	}
}

func TestOverloadSheddingViaIdleRateSignal(t *testing.T) {
	// Unit-level: drive the admission controller directly with a synthetic
	// overheated sample and verify submissions shed with 429.
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)

	s.adm.observe(samplePolicySample(0.9, cfg.ShedMinTasks+1))
	resp, _ := postJob(t, ts.URL, JobSpec{Kind: KindFibonacci, Size: 10})
	// The background sampling loop may clear the flag between observe and
	// POST; accept either, but if shed, the response must carry Retry-After.
	if resp.StatusCode == http.StatusTooManyRequests {
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	} else if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}

	// Below the task floor the same idle-rate must NOT shed: high idle on an
	// empty runtime means capacity, not overload.
	s.Telemetry().Stop() // freeze the sampling loop so the verdict is ours
	s.adm.observe(samplePolicySample(0.9, 0))
	if se := s.adm.check(); se != nil {
		t.Fatalf("idle-but-empty runtime shed: %v", se)
	}
	s.adm.observe(samplePolicySample(0.9, cfg.ShedMinTasks+1))
	se := s.adm.check()
	if se == nil {
		t.Fatal("overheated sample did not shed")
	}
	if se.status != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", se.status)
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	ctx := context.Background()
	if _, err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestJobStoreEviction(t *testing.T) {
	st := newJobStore()
	for i := 0; i < retainFinished+50; i++ {
		j, _ := st.add(JobSpec{Kind: KindFibonacci, Size: 5}, time.Time{})
		j.startRunning(1, "request")
		j.finish(&JobResult{}, nil)
	}
	live, _ := st.add(JobSpec{Kind: KindFibonacci, Size: 5}, time.Time{})
	st.add(JobSpec{Kind: KindFibonacci, Size: 5}, time.Time{}) // trigger evict pass
	if len(st.list()) > retainFinished+2 {
		t.Fatalf("store retained %d jobs, bound is %d+2", len(st.list()), retainFinished)
	}
	if _, ok := st.get(live.ID()); !ok {
		t.Fatal("eviction dropped a non-terminal job")
	}
}

// samplePolicySample builds a minimal policy-engine sample for admission.
func samplePolicySample(idle, tasks float64) policyengine.Sample {
	return policyengine.Sample{IdleRate: idle, Tasks: tasks}
}

func ExampleServer() {
	cfg := config.DefaultServer()
	cfg.Workers = 2
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	s.Start()
	defer s.Close()
	job, shed := s.Submit(JobSpec{Kind: KindFibonacci, Size: 20, Grain: 10})
	if shed != nil {
		panic(shed)
	}
	<-job.Done()
	fmt.Println(job.State(), job.View().Result.Checksum)
	// Output: done 6765
}
