// Workload runners: each job kind is executed as a task group on the shared
// runtime, with the job's grain as the granularity knob and a per-task abort
// check so cancellation and deadlines drain quickly without ever blocking a
// worker. The kinds cover the paper's application classes: a regular
// dataflow grid (stencil1d), a recursive fork/join tree (fibonacci), a
// seeded irregular DAG (irregular), and the parameterized Task Bench grid
// (taskbench), whose dependence pattern is part of the request.
package taskserve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"taskgrain/internal/future"
	simpkg "taskgrain/internal/sim"
	"taskgrain/internal/taskbench"
	"taskgrain/internal/taskrt"
	"taskgrain/internal/trace"
	"taskgrain/internal/workloads"
)

// Job kinds.
const (
	KindStencil   = "stencil1d"
	KindFibonacci = "fibonacci"
	KindIrregular = "irregular"
	KindTaskbench = "taskbench"
)

// jobKinds lists every kind; the server builds one adaptive grain
// controller per entry.
var jobKinds = []string{KindStencil, KindFibonacci, KindIrregular, KindTaskbench}

// JobSpec is the request vocabulary of POST /v1/jobs: a parameterized task
// workload in the Task Bench style — kind, problem size, and the grain knob.
type JobSpec struct {
	// Kind selects the workload: stencil1d, fibonacci, irregular, or
	// taskbench.
	Kind string `json:"kind"`
	// Size is the problem size: grid points (stencil1d), the Fibonacci index
	// (fibonacci), total work points (irregular), or the task-grid width
	// (taskbench).
	Size int `json:"size"`
	// Steps is the time-step / dependency-generation count (default 4;
	// stencil1d and taskbench).
	Steps int `json:"steps,omitempty"`
	// Grain is the task grain: points per partition (stencil1d), the
	// sequential cutoff index (fibonacci), points per task (irregular), or
	// kernel work units per task (taskbench). Zero asks the server to
	// choose adaptively from live counters.
	Grain int `json:"grain,omitempty"`
	// Seed makes irregular DAG / taskbench random-pattern structure
	// reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Pattern selects the taskbench dependence pattern: trivial, chain,
	// stencil1d, fft, random, or tree (default stencil1d; taskbench only).
	Pattern string `json:"pattern,omitempty"`
	// Kernel selects the taskbench per-task kernel: busywork or memwalk
	// (default busywork; taskbench only).
	Kernel string `json:"kernel,omitempty"`
	// Metg, for taskbench jobs, additionally runs a bounded METG(50%)
	// search on the job's pattern and reports the figure in the result.
	Metg bool `json:"metg,omitempty"`
	// DeadlineMillis bounds the job's total service time (queue + run);
	// zero uses the server default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// IdempotencyKey, when set, makes the submission replayable: a second
	// submit with the same key returns the already-admitted job instead of
	// running the work twice. Mesh gateways set it so failover resubmission
	// after a suspected node death stays exactly-once per node.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TraceContext is the cross-hop trace identity ("%016x-%016x"
	// trace-span hex) a mesh gateway propagates; it normally arrives in the
	// Taskgrain-Trace header (which overrides the body) and is echoed in
	// job views so every hop of one job shares a trace ID.
	TraceContext string `json:"trace_context,omitempty"`
}

// maxIdempotencyKey bounds the key length; keys are routing metadata, not
// payload.
const maxIdempotencyKey = 128

// Fibonacci bounds. fib(92) is the largest index fitting uint64, but both
// halves of the workload are exponential — the sequential kernel in the
// cutoff, the task tree in (index − cutoff) — so the service bounds each:
// the cutoff at 32 (≈2M adds per leaf task) and the tree span at 25
// (≈242k tasks).
const (
	maxFibIndex  = 50
	maxFibCutoff = 32
	maxFibSpan   = 25
)

// Taskbench bounds: the grid width and generation count cap the task count
// (width × steps tasks), and the grain — kernel work units per task — caps
// single-task duration (~10ms of busy-work at the ceiling).
const (
	maxTaskbenchWidth = 4096
	maxTaskbenchGrain = 10_000_000
	// taskbenchGrainFloor is the adaptive-tuner minimum: ~a quarter
	// microsecond of busy-work, below which per-task overhead swamps the
	// kernel entirely.
	taskbenchGrainFloor = 256
)

// withDefaults fills unset optional fields.
func (s JobSpec) withDefaults() JobSpec {
	if (s.Kind == KindStencil || s.Kind == KindTaskbench) && s.Steps == 0 {
		s.Steps = 4
	}
	if s.Kind == KindTaskbench && s.Pattern == "" {
		s.Pattern = taskbench.Stencil.String()
	}
	return s
}

// Validate reports the first problem with the spec, or nil. maxSize is the
// server's configured job-size ceiling.
func (s *JobSpec) Validate(maxSize int) error {
	switch s.Kind {
	case KindStencil, KindFibonacci, KindIrregular, KindTaskbench:
	default:
		return fmt.Errorf("taskserve: unknown kind %q (want %s, %s, %s, or %s)",
			s.Kind, KindStencil, KindFibonacci, KindIrregular, KindTaskbench)
	}
	if s.Size < 1 {
		return fmt.Errorf("taskserve: size = %d", s.Size)
	}
	if s.Size > maxSize {
		return fmt.Errorf("taskserve: size %d exceeds server limit %d", s.Size, maxSize)
	}
	if s.Kind == KindFibonacci && s.Size > maxFibIndex {
		return fmt.Errorf("taskserve: fibonacci index %d exceeds limit %d", s.Size, maxFibIndex)
	}
	if s.Kind == KindTaskbench {
		// The taskbench grain counts kernel units, not points, so it has
		// its own ceiling independent of Size (the grid width).
		if s.Size > maxTaskbenchWidth {
			return fmt.Errorf("taskserve: taskbench width %d exceeds limit %d", s.Size, maxTaskbenchWidth)
		}
		if s.Grain < 0 || s.Grain > maxTaskbenchGrain {
			return fmt.Errorf("taskserve: taskbench grain %d out of [0,%d]", s.Grain, maxTaskbenchGrain)
		}
		if _, err := taskbench.ParsePattern(s.Pattern); err != nil {
			return fmt.Errorf("taskserve: %w", err)
		}
		if _, err := taskbench.ParseKernel(s.Kernel); err != nil {
			return fmt.Errorf("taskserve: %w", err)
		}
	} else {
		if s.Pattern != "" || s.Kernel != "" || s.Metg {
			return fmt.Errorf("taskserve: pattern/kernel/metg are taskbench-only fields")
		}
		if s.Grain < 0 || s.Grain > s.Size {
			return fmt.Errorf("taskserve: grain %d out of [0,%d]", s.Grain, s.Size)
		}
	}
	if s.Kind == KindFibonacci && s.Grain > 0 {
		if s.Grain > maxFibCutoff {
			return fmt.Errorf("taskserve: fibonacci cutoff %d exceeds limit %d", s.Grain, maxFibCutoff)
		}
		if s.Size-s.Grain > maxFibSpan {
			return fmt.Errorf("taskserve: fibonacci span %d−%d exceeds tree limit %d", s.Size, s.Grain, maxFibSpan)
		}
	}
	if (s.Kind == KindStencil || s.Kind == KindTaskbench) && (s.Steps < 1 || s.Steps > 10_000) {
		return fmt.Errorf("taskserve: steps = %d out of [1,10000]", s.Steps)
	}
	if s.DeadlineMillis < 0 {
		return fmt.Errorf("taskserve: deadline_ms = %d", s.DeadlineMillis)
	}
	if len(s.IdempotencyKey) > maxIdempotencyKey {
		return fmt.Errorf("taskserve: idempotency_key longer than %d bytes", maxIdempotencyKey)
	}
	if s.TraceContext != "" {
		if _, ok := trace.ParseSpanContext(s.TraceContext); !ok {
			return fmt.Errorf("taskserve: malformed trace_context %q", s.TraceContext)
		}
	}
	return nil
}

// grainBounds returns the adaptive-tuner clamp for one kind. Units follow
// the kind's grain semantics (points for stencil/irregular, the cutoff index
// for fibonacci).
func grainBounds(kind string, maxJobSize int) (lo, hi, start int) {
	switch kind {
	case KindFibonacci:
		return 1, maxFibCutoff, 20
	case KindTaskbench:
		// Units of kernel work per task: start around tens of microseconds
		// of busy-work, the fine side of the paper's sweet spot.
		return taskbenchGrainFloor, maxTaskbenchGrain, 50_000
	default:
		return 64, maxJobSize, 10_000
	}
}

// clampGrain restricts an adaptive recommendation to the job's own legal
// range; for fibonacci that includes the exponential-tree guard rails, and
// for taskbench the grain is kernel units, bounded independently of Size.
func clampGrain(kind string, g, size int) int {
	lo, hi := 1, size
	switch kind {
	case KindFibonacci:
		if hi > maxFibCutoff {
			hi = maxFibCutoff
		}
		if size-maxFibSpan > lo {
			lo = size - maxFibSpan
		}
	case KindTaskbench:
		lo, hi = taskbenchGrainFloor, maxTaskbenchGrain
	}
	if g < lo {
		return lo
	}
	if g > hi {
		return hi
	}
	return g
}

// runWorkload dispatches a job to its kind's runner. abort is polled by
// every task body; a true return makes the task cheap (skip the kernel, keep
// the dependency structure) so the group drains at queue speed.
func runWorkload(rt *taskrt.Runtime, spec JobSpec, grain int, abort func() bool) (*JobResult, error) {
	switch spec.Kind {
	case KindStencil:
		return runStencilJob(rt, spec, grain, abort)
	case KindFibonacci:
		return runFibJob(rt, spec, grain, abort)
	case KindIrregular:
		return runIrregularJob(rt, spec, grain, abort)
	case KindTaskbench:
		return runTaskbenchJob(rt, spec, grain, abort)
	default:
		return nil, fmt.Errorf("taskserve: unknown kind %q", spec.Kind)
	}
}

// Bounds on the per-job METG search (spec.Metg): the probe grid is capped
// so the search costs milliseconds, not the job's full problem size.
const (
	metgProbeSteps = 4
	metgProbeWidth = 16
	metgProbes     = 4
)

// runTaskbenchJob executes a Steps × Size task grid of the requested
// dependence pattern through the taskbench engine, grain = kernel work
// units per task. With spec.Metg set it follows up with a bounded
// METG(50%) search on the same pattern so the job document carries the
// minimum effective task granularity next to the grain that served it.
func runTaskbenchJob(rt *taskrt.Runtime, spec JobSpec, grain int, abort func() bool) (*JobResult, error) {
	pattern, err := taskbench.ParsePattern(spec.Pattern)
	if err != nil {
		return nil, err
	}
	kernel, err := taskbench.ParseKernel(spec.Kernel)
	if err != nil {
		return nil, err
	}
	cfg := taskbench.Config{
		Graph:  taskbench.Graph{Pattern: pattern, Steps: spec.Steps, Width: spec.Size, Seed: spec.Seed},
		Kernel: kernel,
		Grain:  grain,
		Abort:  abort,
	}
	res, err := taskbench.Run(rt, cfg)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Tasks:       res.Tasks,
		Checksum:    float64(res.Checksum % (1 << 52)), // keep exact in float64
		Pattern:     pattern.String(),
		Efficiency:  res.Efficiency,
		generations: spec.Steps,
	}
	if spec.Metg && !abort() {
		probe := cfg
		probe.Graph.Steps = minInt(probe.Graph.Steps, metgProbeSteps)
		probe.Graph.Width = minInt(probe.Graph.Width, metgProbeWidth)
		metg, err := taskbench.MeasureMETG(rt, probe, taskbench.MetgConfig{
			Probes: metgProbes,
			Abort:  abort,
		})
		if err != nil {
			return nil, err
		}
		out.MetgNs = metg.MetgNs
		out.MetgFound = metg.Found
	}
	return out, nil
}

// runStencilJob executes Size grid points of three-point heat diffusion on a
// ring for Steps steps, one task per partition per step with a group barrier
// between steps — the serving-path edition of the paper's HPX-Stencil
// benchmark, with grain = points per partition.
func runStencilJob(rt *taskrt.Runtime, spec JobSpec, grain int, abort func() bool) (*JobResult, error) {
	n := spec.Size
	parts := (n + grain - 1) / grain
	const alpha = 0.25

	cur := make([][]float64, parts)
	next := make([][]float64, parts)
	var tasks atomic.Int64

	// Initialization wave: one task per partition, spawned as one batch —
	// the serving path fans out `parts` tasks per wave, so the batched
	// spawn is where the per-task spawn cost amortizes.
	g := rt.NewGroup()
	initFns := make([]func(*taskrt.Context), parts)
	for p := 0; p < parts; p++ {
		p := p
		initFns[p] = func(*taskrt.Context) {
			lo := p * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			part := make([]float64, hi-lo)
			if !abort() {
				for i := range part {
					part[i] = float64(lo + i)
				}
			}
			cur[p] = part
		}
	}
	tasks.Add(int64(parts))
	g.SpawnBatch(initFns)
	g.Wait()

	steps := 0
	stepFns := make([]func(*taskrt.Context), parts)
	for s := 0; s < spec.Steps && !abort(); s++ {
		g := rt.NewGroup()
		for p := 0; p < parts; p++ {
			p := p
			stepFns[p] = func(*taskrt.Context) {
				left := cur[(p-1+parts)%parts]
				mid := cur[p]
				right := cur[(p+1)%parts]
				out := make([]float64, len(mid))
				if abort() {
					copy(out, mid)
				} else {
					heatKernel(left, mid, right, out, alpha)
				}
				next[p] = out
			}
		}
		tasks.Add(int64(parts))
		g.SpawnBatch(stepFns)
		g.Wait()
		cur, next = next, cur
		steps++
	}

	sum := 0.0
	for _, part := range cur {
		for _, v := range part {
			sum += v
		}
	}
	return &JobResult{Tasks: tasks.Load(), Checksum: sum, generations: steps + 1}, nil
}

// heatKernel applies the three-point diffusion update to one partition given
// its ring neighbours.
func heatKernel(left, mid, right, out []float64, alpha float64) {
	m := len(mid)
	at := func(i int) float64 {
		switch {
		case i < 0:
			return left[len(left)-1]
		case i >= m:
			return right[0]
		default:
			return mid[i]
		}
	}
	for i := 0; i < m; i++ {
		l, c, r := at(i-1), mid[i], at(i+1)
		out[i] = c + alpha*(l-2*c+r)
	}
}

// runFibJob computes fib(Size) as a recursive future tree with a sequential
// cutoff at index grain — the canonical fine-grained fork/join workload,
// with grain = how much of the tree one task absorbs.
func runFibJob(rt *taskrt.Runtime, spec JobSpec, grain int, abort func() bool) (*JobResult, error) {
	var tasks atomic.Int64
	var build func(n int) *future.Future[uint64]
	build = func(n int) *future.Future[uint64] {
		if abort() {
			return future.Ready[uint64](0)
		}
		if n < grain || n < 2 {
			tasks.Add(1)
			return future.Async(rt, func() uint64 {
				if abort() {
					return 0
				}
				return fibSeq(n)
			})
		}
		left := build(n - 1)
		right := build(n - 2)
		tasks.Add(1) // the join task
		return future.Dataflow(rt, func(vs []uint64) uint64 {
			return vs[0] + vs[1]
		}, []*future.Future[uint64]{left, right})
	}
	v := build(spec.Size).Wait()
	gens := spec.Size - grain + 1
	if gens < 1 {
		gens = 1
	}
	return &JobResult{Tasks: tasks.Load(), Checksum: float64(v), generations: gens}, nil
}

// fibSeq is the sequential kernel below the cutoff.
func fibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

// runIrregularJob executes a seeded random DAG totalling ~Size work points,
// grain points per task — the graph-analytics-shaped load the paper calls
// out as inherently fine-grained. The DAG generator is shared with the
// simulator; its completion hooks mutate generator state, so a mutex
// serializes them (task kernels themselves run fully parallel).
func runIrregularJob(rt *taskrt.Runtime, spec JobSpec, grain int, abort func() bool) (*JobResult, error) {
	nTasks := spec.Size / grain
	if nTasks < 1 {
		nTasks = 1
	}
	dag := &workloads.RandomDAG{
		Tasks:     nTasks,
		MaxDeg:    3,
		MinPoints: maxInt(1, grain/2),
		MaxPoints: maxInt(2, grain*2),
		Seed:      spec.Seed,
	}
	if err := dag.Build(); err != nil {
		return nil, err
	}

	var (
		mu       sync.Mutex // serializes DAG bookkeeping (Roots/OnComplete)
		tasks    atomic.Int64
		checksum atomic.Uint64
		g        = rt.NewGroup()
	)
	var spawn func(st simpkg.Task)
	spawn = func(st simpkg.Task) {
		tasks.Add(1)
		g.Spawn(func(*taskrt.Context) {
			if !abort() {
				checksum.Add(burn(st.Points))
			}
			mu.Lock()
			dag.OnComplete(st, spawn)
			mu.Unlock()
		})
	}
	mu.Lock()
	dag.Roots(spawn)
	mu.Unlock()
	g.Wait()

	return &JobResult{
		Tasks:       tasks.Load(),
		Checksum:    float64(checksum.Load() % (1 << 52)), // keep exact in float64
		generations: 1,
	}, nil
}

// burn is the irregular kernel: points iterations of xorshift, returning a
// value the compiler cannot elide.
func burn(points int) uint64 {
	x := uint64(points)*2654435761 + 1
	for i := 0; i < points; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
