package taskserve

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"taskgrain/internal/config"
	"taskgrain/internal/policyengine"
)

// shedError is a refused admission: the HTTP status to return, why, and the
// Retry-After hint.
type shedError struct {
	status     int
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return fmt.Sprintf("shed (%d): %s", e.status, e.reason) }

// admission decides whether a submission may enter the system. It bounds two
// queues directly — jobs waiting for a runner slot and the runtime's own
// task backlog (staged+pending+active+suspended, the serving-layer analogue
// of the paper's pending-queue depth) — and sheds on the idle-rate signal:
// an interval whose Eq. 1 idle-rate exceeds the threshold *while tasks are
// flowing* means the runtime is overhead-bound (the U-curve's left wall),
// so adding work would only buy more scheduling overhead. The task-flow
// floor is what disambiguates that from an empty runtime, where idle-rate
// is also high but admitting is exactly right.
type admission struct {
	cfg config.Server

	queuedJobs    func() int
	inflightTasks func() int64

	// overloaded is the latest interval verdict, written by the policy
	// engine's sampling loop and read on every submission.
	overloaded atomic.Bool
	// lastIdle holds the latest interval idle-rate (float64 bits) for the
	// stats endpoint.
	lastIdle atomic.Uint64

	shedQueue    atomic.Int64 // sheds due to the job-queue bound
	shedBacklog  atomic.Int64 // sheds due to the task-backlog bound
	shedOverload atomic.Int64 // sheds due to the idle-rate signal
}

func newAdmission(cfg config.Server, queuedJobs func() int, inflightTasks func() int64) *admission {
	return &admission{cfg: cfg, queuedJobs: queuedJobs, inflightTasks: inflightTasks}
}

// check admits (nil) or returns the shed decision for one submission.
func (a *admission) check() *shedError {
	if q := a.queuedJobs(); q >= a.cfg.MaxQueuedJobs {
		a.shedQueue.Add(1)
		return &shedError{
			status:     429,
			reason:     fmt.Sprintf("job queue full (%d queued, limit %d)", q, a.cfg.MaxQueuedJobs),
			retryAfter: a.cfg.RetryAfter,
		}
	}
	if n := a.inflightTasks(); n >= a.cfg.MaxInflightTasks {
		a.shedBacklog.Add(1)
		return &shedError{
			status:     429,
			reason:     fmt.Sprintf("task backlog %d at limit %d", n, a.cfg.MaxInflightTasks),
			retryAfter: a.cfg.RetryAfter,
		}
	}
	if a.overloaded.Load() {
		a.shedOverload.Add(1)
		return &shedError{
			status: 429,
			reason: fmt.Sprintf("idle-rate %.0f%% above threshold %.0f%% under load (overhead-bound)",
				a.idleRate()*100, a.cfg.HighIdle*100),
			retryAfter: a.cfg.RetryAfter,
		}
	}
	return nil
}

// observe consumes one policy-engine interval sample and updates the
// overload verdict. Exposed as a policyengine.Policy via policy().
func (a *admission) observe(s policyengine.Sample) {
	a.lastIdle.Store(math.Float64bits(s.IdleRate))
	a.overloaded.Store(s.IdleRate > a.cfg.HighIdle && s.Tasks >= a.cfg.ShedMinTasks)
}

// policy adapts the admission controller to the policy engine: it only
// observes, never actuates.
func (a *admission) policy() policyengine.Policy {
	return policyengine.PolicyFunc{
		PolicyName: "admission",
		Fn: func(s policyengine.Sample) []policyengine.Action {
			a.observe(s)
			return nil
		},
	}
}

// idleRate returns the latest interval idle-rate.
func (a *admission) idleRate() float64 {
	return math.Float64frombits(a.lastIdle.Load())
}

// sheds returns the cumulative shed counts by cause.
func (a *admission) sheds() (queue, backlog, overload int64) {
	return a.shedQueue.Load(), a.shedBacklog.Load(), a.shedOverload.Load()
}
