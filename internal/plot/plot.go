// Package plot renders the experiment series as ASCII line charts and CSV,
// so every figure of the paper can be regenerated in a terminal and piped
// into external plotting tools. Charts support a logarithmic X axis, which
// every figure in the paper uses (partition size spans 160 … 10^8).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart describes one ASCII figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	// Width and Height are the plot-area dimensions in characters
	// (defaults 72×20).
	Width, Height int
	Series        []Series
}

// markers distinguish series in the plot area.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart. Series with mismatched X/Y lengths or no points
// are skipped. Non-finite values are ignored.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	var legend []string
	for si, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		m := markers[si%len(markers)]
		legend = append(legend, fmt.Sprintf("%c %s", m, s.Label))
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, pt{x, y, m})
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range pts {
		col := int(math.Round((p.x - xmin) / (xmax - xmin) * float64(w-1)))
		row := int(math.Round((p.y - ymin) / (ymax - ymin) * float64(h-1)))
		r := h - 1 - row // invert: row 0 is the top
		if grid[r][col] == ' ' || grid[r][col] == p.m {
			grid[r][col] = p.m
		} else {
			grid[r][col] = '?' // collision of different series
		}
	}

	yTop := formatTick(ymax)
	yBot := formatTick(ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = pad(yTop, margin)
		case h - 1:
			label = pad(yBot, margin)
		case h / 2:
			label = pad(formatTick((ymin+ymax)/2), margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	lo, hi := xmin, xmax
	xlo, xhi := formatTick(lo), formatTick(hi)
	if c.LogX {
		xlo = "1e" + formatTick(lo)
		xhi = "1e" + formatTick(hi)
	}
	gap := w - len(xlo) - len(xhi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xlo, strings.Repeat(" ", gap), xhi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", margin), strings.Join(legend, "   "))
	}
	return b.String()
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.01:
		return fmt.Sprintf("%.2g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// WriteCSV writes a header row and data rows. Cells are rendered with %v;
// cells containing commas or quotes are quoted.
func WriteCSV(w io.Writer, header []string, rows [][]any) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("plot: row has %d cells, header has %d", len(row), len(header))
		}
		cells := make([]string, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case float64:
				cells[i] = fmt.Sprintf("%.6g", x)
			default:
				cells[i] = fmt.Sprintf("%v", v)
			}
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sparkChars are the eighth-block glyphs used by Sparkline.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character chart, scaled to
// the [min, max] of the data (a flat series renders mid-height). Useful for
// compact utilization timelines in terminal reports.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := len(sparkChars) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkChars)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkChars) {
			idx = len(sparkChars) - 1
		}
		out[i] = sparkChars[idx]
	}
	return string(out)
}
