package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{
		Title:  "Execution Time vs Grain",
		XLabel: "partition size",
		YLabel: "seconds",
		LogX:   true,
		Series: []Series{
			{Label: "8 cores", X: []float64{100, 1000, 10000}, Y: []float64{5, 2, 3}},
			{Label: "16 cores", X: []float64{100, 1000, 10000}, Y: []float64{4, 1, 2.5}},
		},
	}
	out := c.Render()
	for _, want := range []string{"Execution Time vs Grain", "* 8 cores", "o 16 cores", "partition size", "seconds", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart: %q", out)
	}
	// Series with mismatched lengths are skipped, not crashed on.
	c2 := Chart{Series: []Series{{Label: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if out := c2.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("mismatched series not skipped: %q", out)
	}
}

func TestRenderNonFiniteAndNonPositiveLogX(t *testing.T) {
	c := Chart{
		LogX: true,
		Series: []Series{{
			Label: "s",
			X:     []float64{-5, 0, 10, 100},
			Y:     []float64{1, 2, math.NaN(), 4},
		}},
	}
	out := c.Render()
	// Only x=100/y=4 survives (x=10 has NaN y; x<=0 dropped under log).
	if strings.Contains(out, "(no data)") {
		t.Fatalf("expected surviving point:\n%s", out)
	}
}

func TestRenderConstantAxes(t *testing.T) {
	c := Chart{Series: []Series{{Label: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	out := c.Render()
	if out == "" || strings.Contains(out, "(no data)") {
		t.Fatal("flat series must still render")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"size", "time", "note"}, [][]any{
		{100, 1.5, "plain"},
		{1000, 0.25, `with "quote", comma`},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "size,time,note" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "100,1.5,plain" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], `"with ""quote"", comma"`) {
		t.Errorf("row 2 quoting = %q", lines[2])
	}
}

func TestWriteCSVRowMismatch(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []string{"a", "b"}, [][]any{{1}}); err == nil {
		t.Fatal("mismatched row accepted")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "cores"}, [][]string{
		{"haswell", "28"},
		{"xeonphi", "61"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "cores") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Alignment: all rows same width for first column.
	if !strings.HasPrefix(lines[2], "haswell") || !strings.HasPrefix(lines[3], "xeonphi") {
		t.Errorf("rows: %q %q", lines[2], lines[3])
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		123456:  "1.2e+05",
		0.001:   "0.001",
		150:     "150",
		3.14159: "3.14",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	got := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(got)
	if len(runes) != 3 {
		t.Fatalf("length = %d (%q)", len(runes), got)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("extremes = %q", got)
	}
	// Flat series renders mid-height, not panicking on zero range.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	if len(flat) != 3 || flat[0] != flat[2] {
		t.Fatalf("flat = %q", string(flat))
	}
	// Monotone data renders nondecreasing glyphs.
	mono := []rune(Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}))
	for i := 1; i < len(mono); i++ {
		if mono[i] < mono[i-1] {
			t.Fatalf("not monotone: %q", string(mono))
		}
	}
}
