package policyengine

import (
	"fmt"
	"sort"
	"time"

	"taskgrain/internal/adaptive"
	"taskgrain/internal/telemetry"
)

// GrainPolicy drives the adaptive grain tuner from engine samples — the
// paper's metrics steering its proposed auto-tuning loop. Generations is
// how many dependency waves one sampling interval spans (used to convert
// the interval task count into parallel slack); for a parallel-for style
// application this is 1.
type GrainPolicy struct {
	Tuner *adaptive.Tuner
	// Generations per sampling interval (default 1).
	Generations int
}

// Name implements Policy.
func (g *GrainPolicy) Name() string { return "grain" }

// Evaluate implements Policy.
func (g *GrainPolicy) Evaluate(s Sample) []Action {
	if g.Tuner == nil || s.Grain <= 0 || s.Tasks <= 0 {
		return nil
	}
	gen := g.Generations
	if gen < 1 {
		gen = 1
	}
	next, dec := g.Tuner.Next(adaptive.Observation{
		PartitionSize: s.Grain,
		IdleRate:      s.IdleRate,
		Tasks:         s.Tasks / float64(gen),
		Cores:         s.ActiveWorkers,
	})
	if dec == adaptive.Keep || next == s.Grain {
		return nil
	}
	return []Action{{
		SetGrain: next,
		Note:     fmt.Sprintf("grain: %s %d -> %d (idle %.0f%%)", dec, s.Grain, next, s.IdleRate*100),
	}}
}

// WatchdogPolicy closes the loop the telemetry watchdog used to dead-end:
// it evaluates the watchdog over the telemetry ring on every engine sample,
// and when the alert is active it turns the grow/shrink verdict (the
// paper's two U-curve walls, disambiguated by the task-flow floor) into
// per-kind grain Actions. Hysteresis comes from the watchdog itself — the
// alert only fires after a full window above HighIdle — plus a Cooldown
// between emitted moves so one sustained alert cannot multiply the grain
// once per sampling interval. Guardrails (clamping to each controller's
// bounds) are applied at actuation.
type WatchdogPolicy struct {
	// Watchdog is the alert state machine to evaluate (required).
	Watchdog *telemetry.Watchdog
	// Ring supplies the telemetry ring the watchdog inspects (required).
	Ring func() *telemetry.Ring
	// Growth is the grain multiplier per move (default 2).
	Growth int
	// Cooldown is the minimum spacing between emitted moves (default the
	// watchdog's window).
	Cooldown time.Duration

	lastFire time.Time
}

// Name implements Policy.
func (w *WatchdogPolicy) Name() string { return "watchdog" }

// Evaluate implements Policy.
func (w *WatchdogPolicy) Evaluate(s Sample) []Action {
	if w.Watchdog == nil || w.Ring == nil {
		return nil
	}
	alert := w.Watchdog.Evaluate(w.Ring())
	if !alert.Active || len(s.Grains) == 0 {
		return nil
	}
	cooldown := w.Cooldown
	if cooldown <= 0 {
		cooldown = w.Watchdog.Config().Window
	}
	if !w.lastFire.IsZero() && s.At.Sub(w.lastFire) < cooldown {
		return nil
	}
	growth := w.Growth
	if growth < 2 {
		growth = 2
	}
	kinds := make([]string, 0, len(s.Grains))
	for k := range s.Grains {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var acts []Action
	for _, kind := range kinds {
		cur := s.Grains[kind]
		if cur < 1 {
			continue
		}
		var next int
		switch alert.Suggestion {
		case telemetry.SuggestGrowGrain:
			next = cur * growth
		case telemetry.SuggestShrinkGrain:
			next = cur / growth
			if next < 1 {
				next = 1
			}
		default:
			continue
		}
		if next == cur {
			continue
		}
		acts = append(acts, Action{
			SetGrain:  next,
			GrainKind: kind,
			Note: fmt.Sprintf("watchdog: %s %s %d -> %d (%s, idle %.0f%%)",
				alert.Suggestion, kind, cur, next, alert.Wall, alert.IdleRate*100),
		})
	}
	if len(acts) > 0 {
		w.lastFire = s.At
	}
	return acts
}

// ThrottleConfig parameterizes ThrottlePolicy.
type ThrottleConfig struct {
	// HighIdle triggers throttling down when exceeded (default 0.60).
	HighIdle float64
	// LowIdle triggers unthrottling when undercut (default 0.20).
	LowIdle float64
	// MinWorkers floors the throttle (default 1).
	MinWorkers int
	// Step is how many workers each adjustment adds or removes (default 1).
	Step int
}

func (c ThrottleConfig) withDefaults() ThrottleConfig {
	if c.HighIdle == 0 {
		c.HighIdle = 0.60
	}
	if c.LowIdle == 0 {
		c.LowIdle = 0.20
	}
	if c.MinWorkers < 1 {
		c.MinWorkers = 1
	}
	if c.Step < 1 {
		c.Step = 1
	}
	return c
}

// Validate reports the first problem with the configuration, or nil.
func (c ThrottleConfig) Validate() error {
	d := c.withDefaults()
	if d.LowIdle >= d.HighIdle {
		return fmt.Errorf("policyengine: LowIdle %v >= HighIdle %v", d.LowIdle, d.HighIdle)
	}
	if d.HighIdle >= 1 {
		return fmt.Errorf("policyengine: HighIdle %v >= 1", d.HighIdle)
	}
	return nil
}

// ThrottlePolicy is Porterfield-style introspective worker throttling: when
// the interval idle-rate shows workers mostly burning cycles looking for
// work (starvation or contention), it parks workers; when the runtime is
// busy again, it releases them. The paper reports this scheduler was
// integrated with HPX and proposes driving it with these metrics (Sec. V,
// VI).
type ThrottlePolicy struct {
	Config ThrottleConfig
}

// Name implements Policy.
func (t *ThrottlePolicy) Name() string { return "throttle" }

// Evaluate implements Policy.
func (t *ThrottlePolicy) Evaluate(s Sample) []Action {
	c := t.Config.withDefaults()
	switch {
	case s.IdleRate > c.HighIdle && s.ActiveWorkers > c.MinWorkers:
		next := s.ActiveWorkers - c.Step
		if next < c.MinWorkers {
			next = c.MinWorkers
		}
		return []Action{{
			SetActiveWorkers: next,
			Note: fmt.Sprintf("throttle: %d -> %d workers (idle %.0f%% > %.0f%%)",
				s.ActiveWorkers, next, s.IdleRate*100, c.HighIdle*100),
		}}
	case s.IdleRate < c.LowIdle && s.ActiveWorkers < s.MaxWorkers:
		next := s.ActiveWorkers + c.Step
		if next > s.MaxWorkers {
			next = s.MaxWorkers
		}
		return []Action{{
			SetActiveWorkers: next,
			Note: fmt.Sprintf("throttle: %d -> %d workers (idle %.0f%% < %.0f%%)",
				s.ActiveWorkers, next, s.IdleRate*100, c.LowIdle*100),
		}}
	}
	return nil
}
