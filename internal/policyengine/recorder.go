package policyengine

import (
	"sync"
	"time"

	"taskgrain/internal/counters"
)

// Decision outcome labels, exported in the decision log's "mode" field.
const (
	// DecisionActuated means the action was applied to its actuator.
	DecisionActuated = "actuated"
	// DecisionAdvisory means control_mode=advisory held the action back.
	DecisionAdvisory = "advisory"
	// DecisionVetoed means a guardrail rejected the action; Veto says why.
	DecisionVetoed = "vetoed"
)

// Control-plane counter names registered by the Recorder.
const (
	// ControlDecisions counts every decision the control plane took.
	ControlDecisions = "/control/decisions"
	// ControlActuations counts decisions that actuated a knob.
	ControlActuations = "/control/actuations"
	// ControlVetoes counts decisions a guardrail rejected.
	ControlVetoes = "/control/vetoes"
)

// Decision is one control-plane verdict: which policy asked for what, and
// whether it actuated, stayed advisory, or was vetoed.
type Decision struct {
	At     time.Time `json:"at"`
	Policy string    `json:"policy"`
	Action string    `json:"action"`
	Mode   string    `json:"mode"`
	Veto   string    `json:"veto,omitempty"`
}

// Recorder keeps a bounded log of control-plane decisions and exports the
// /control/{decisions,actuations,vetoes} counters. Both the engine and the
// mesh gateway embed one, so every layer's steering is inspectable the same
// way.
type Recorder struct {
	mu  sync.Mutex
	cap int
	log []Decision

	decisions  *counters.Cumulative
	actuations *counters.Cumulative
	vetoes     *counters.Cumulative
}

// NewRecorder builds a recorder with the given log capacity (default 128)
// and registers its counters on reg (skipped when reg is nil).
func NewRecorder(reg *counters.Registry, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 128
	}
	r := &Recorder{
		cap:        capacity,
		decisions:  counters.NewCumulative(ControlDecisions),
		actuations: counters.NewCumulative(ControlActuations),
		vetoes:     counters.NewCumulative(ControlVetoes),
	}
	if reg != nil {
		reg.MustRegister(r.decisions)
		reg.MustRegister(r.actuations)
		reg.MustRegister(r.vetoes)
	}
	return r
}

// Record appends one decision, bumping the counters and evicting the oldest
// entry once the log is full.
func (r *Recorder) Record(d Decision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decisions.Inc()
	switch d.Mode {
	case DecisionActuated:
		r.actuations.Inc()
	case DecisionVetoed:
		r.vetoes.Inc()
	}
	r.log = append(r.log, d)
	if len(r.log) > r.cap {
		r.log = r.log[len(r.log)-r.cap:]
	}
}

// Log returns a copy of the decision log, oldest first.
func (r *Recorder) Log() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, len(r.log))
	copy(out, r.log)
	return out
}
