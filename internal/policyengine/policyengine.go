// Package policyengine implements the runtime-adaptivity loop the paper's
// conclusion points at (Sec. VI): an APEX-prototype-style engine that
// periodically samples the performance counters, evaluates registered
// policies against the interval metrics, and drives actuators — adapting
// task grain size (this study's contribution) and throttling worker threads
// (Porterfield et al. [19], integrated with HPX per Sec. V).
//
// The engine is deliberately synchronous and deterministic at its core:
// Step() performs exactly one sample→decide→actuate cycle, so policies are
// unit-testable; Run() wraps Step in a ticker for live use.
package policyengine

import (
	"fmt"
	"sync"
	"time"

	"taskgrain/internal/counters"
)

// Sample is one interval's worth of derived metrics handed to policies.
type Sample struct {
	// IdleRate is Eq. 1 recomputed over the interval.
	IdleRate float64
	// Tasks is the number of task first-phases executed in the interval.
	Tasks float64
	// Phases is the number of phases executed in the interval.
	Phases float64
	// PendingMissRate is interval pending misses / accesses (0 if none).
	PendingMissRate float64
	// ActiveWorkers is the current throttle level.
	ActiveWorkers int
	// MaxWorkers is the machine ceiling.
	MaxWorkers int
	// Grain is the current grain the grain actuator reports (0 if none).
	Grain int
	// Elapsed is the interval length.
	Elapsed time.Duration
}

// Action is one adjustment a policy requests.
type Action struct {
	// SetGrain, when > 0, asks the grain actuator for a new grain.
	SetGrain int
	// SetActiveWorkers, when > 0, asks the throttle actuator for a level.
	SetActiveWorkers int
	// Note explains the decision in reports.
	Note string
}

// Policy inspects a sample and returns zero or more actions.
type Policy interface {
	// Name identifies the policy in logs.
	Name() string
	// Evaluate returns the actions for this interval.
	Evaluate(s Sample) []Action
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc struct {
	PolicyName string
	Fn         func(Sample) []Action
}

// Name implements Policy.
func (p PolicyFunc) Name() string { return p.PolicyName }

// Evaluate implements Policy.
func (p PolicyFunc) Evaluate(s Sample) []Action { return p.Fn(s) }

// Actuators connect the engine to the runtime knobs. Nil members disable
// the corresponding action kind.
type Actuators struct {
	// SetGrain applies a new grain size (the application-level knob).
	SetGrain func(int)
	// Grain reports the current grain (for Sample.Grain).
	Grain func() int
	// SetActiveWorkers throttles the runtime (taskrt.Runtime.SetActiveWorkers).
	SetActiveWorkers func(int)
	// ActiveWorkers reports the current throttle level.
	ActiveWorkers func() int
}

// Engine samples a counter registry and runs policies.
type Engine struct {
	mu         sync.Mutex
	reg        *counters.Registry
	maxWorkers int
	act        Actuators
	policies   []Policy

	prev     counters.Snapshot
	prevTime time.Time

	stop chan struct{}
	done chan struct{}
}

// New builds an engine over the registry of a running runtime.
func New(reg *counters.Registry, maxWorkers int, act Actuators) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("policyengine: nil registry")
	}
	if maxWorkers < 1 {
		return nil, fmt.Errorf("policyengine: maxWorkers = %d", maxWorkers)
	}
	return &Engine{
		reg:        reg,
		maxWorkers: maxWorkers,
		act:        act,
		prev:       reg.Snapshot(),
		prevTime:   time.Now(),
	}, nil
}

// AddPolicy registers a policy; policies run in registration order and
// later actions win on conflicting knobs.
func (e *Engine) AddPolicy(p Policy) {
	e.mu.Lock()
	e.policies = append(e.policies, p)
	e.mu.Unlock()
}

// sample derives the interval metrics since the previous Step.
func (e *Engine) sample() Sample {
	cur := e.reg.Snapshot()
	now := time.Now()
	d := cur.Sub(e.prev)
	elapsed := now.Sub(e.prevTime)
	e.prev, e.prevTime = cur, now

	s := Sample{
		Tasks:      d.Get(counters.CountCumulative),
		Phases:     d.Get(counters.CountCumulativePhases),
		MaxWorkers: e.maxWorkers,
		Elapsed:    elapsed,
	}
	if f := d.Get(counters.TimeFuncTotal); f > 0 {
		ir := (f - d.Get(counters.TimeExecTotal)) / f
		if ir < 0 {
			ir = 0
		}
		if ir > 1 {
			ir = 1
		}
		s.IdleRate = ir
	}
	if acc := d.Get(counters.PendingAccesses); acc > 0 {
		s.PendingMissRate = d.Get(counters.PendingMisses) / acc
	}
	if e.act.ActiveWorkers != nil {
		s.ActiveWorkers = e.act.ActiveWorkers()
	} else {
		s.ActiveWorkers = e.maxWorkers
	}
	if e.act.Grain != nil {
		s.Grain = e.act.Grain()
	}
	return s
}

// Step performs one sample→decide→actuate cycle and returns the sample and
// the actions applied.
func (e *Engine) Step() (Sample, []Action) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.sample()
	var applied []Action
	for _, p := range e.policies {
		for _, a := range p.Evaluate(s) {
			if a.SetGrain > 0 && e.act.SetGrain != nil {
				e.act.SetGrain(a.SetGrain)
			}
			if a.SetActiveWorkers > 0 && e.act.SetActiveWorkers != nil {
				e.act.SetActiveWorkers(a.SetActiveWorkers)
			}
			applied = append(applied, a)
		}
	}
	return s, applied
}

// Run steps the engine every interval until Stop. It returns immediately;
// call Stop to terminate the background loop.
func (e *Engine) Run(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return // already running
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				e.Step()
			}
		}
	}()
}

// Stop terminates a Run loop and waits for it to exit. Safe to call when
// not running.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
