// Package policyengine implements the runtime-adaptivity loop the paper's
// conclusion points at (Sec. VI): an APEX-prototype-style engine that
// consumes performance-counter samples, evaluates registered policies
// against the interval metrics, and drives actuators — adapting task grain
// size (this study's contribution) and throttling worker threads
// (Porterfield et al. [19], integrated with HPX per Sec. V).
//
// The engine is the single control plane: samples arrive from the telemetry
// Sampler (one sampling path, real timestamps), policies decide, and the
// engine actuates — or, under ModeAdvisory, records what it would have done.
// Every decision lands in the Recorder, so the whole loop is observable at
// /control/decisions and the /control/{decisions,actuations,vetoes}
// counters. The core is deliberately synchronous and deterministic:
// ObserveSample performs exactly one sample→decide→actuate cycle, so
// policies are unit-testable; Step wraps it over a fresh registry snapshot
// for callers without a sampler.
package policyengine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"taskgrain/internal/adaptive"
	"taskgrain/internal/counters"
	"taskgrain/internal/telemetry"
)

// Mode selects whether the engine applies decisions or only records them.
type Mode string

const (
	// ModeActuate applies every decision to its actuator (the default).
	ModeActuate Mode = "actuate"
	// ModeAdvisory records decisions without applying them — the
	// pre-control-plane alert-only behaviour.
	ModeAdvisory Mode = "advisory"
)

// ParseMode parses a control-mode name; the empty string means ModeActuate.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeActuate):
		return ModeActuate, nil
	case string(ModeAdvisory):
		return ModeAdvisory, nil
	}
	return "", fmt.Errorf("policyengine: unknown control mode %q (want advisory, actuate)", s)
}

// String returns the mode's config-file spelling.
func (m Mode) String() string { return string(m) }

// Sample is one interval's worth of derived metrics handed to policies.
type Sample struct {
	// At is the sample timestamp (the telemetry sampler's clock).
	At time.Time
	// IdleRate is Eq. 1 recomputed over the interval.
	IdleRate float64
	// Tasks is the number of task first-phases executed in the interval.
	Tasks float64
	// Phases is the number of phases executed in the interval.
	Phases float64
	// PendingMissRate is interval pending misses / accesses (0 if none).
	PendingMissRate float64
	// ActiveWorkers is the current throttle level.
	ActiveWorkers int
	// MaxWorkers is the machine ceiling.
	MaxWorkers int
	// Grain is the current grain the scalar grain actuator reports (0 if none).
	Grain int
	// Grains is the current grain per registered kind (nil if none).
	Grains map[string]int
	// Elapsed is the interval length.
	Elapsed time.Duration
}

// Action is one adjustment a policy requests.
type Action struct {
	// SetGrain, when > 0, asks a grain actuator for a new grain.
	SetGrain int
	// GrainKind routes SetGrain to a registered per-kind controller; empty
	// means the scalar Actuators.SetGrain knob.
	GrainKind string
	// SetActiveWorkers, when > 0, asks the throttle actuator for a level.
	SetActiveWorkers int
	// Note explains the decision in reports.
	Note string
}

// Policy inspects a sample and returns zero or more actions.
type Policy interface {
	// Name identifies the policy in logs.
	Name() string
	// Evaluate returns the actions for this interval.
	Evaluate(s Sample) []Action
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc struct {
	PolicyName string
	Fn         func(Sample) []Action
}

// Name implements Policy.
func (p PolicyFunc) Name() string { return p.PolicyName }

// Evaluate implements Policy.
func (p PolicyFunc) Evaluate(s Sample) []Action { return p.Fn(s) }

// Actuators connect the engine to the runtime knobs. Nil members disable
// the corresponding action kind.
type Actuators struct {
	// SetGrain applies a new grain size (the application-level knob).
	SetGrain func(int)
	// Grain reports the current grain (for Sample.Grain).
	Grain func() int
	// SetActiveWorkers throttles the runtime (taskrt.Runtime.SetActiveWorkers).
	SetActiveWorkers func(int)
	// ActiveWorkers reports the current throttle level.
	ActiveWorkers func() int
}

// Options configures New.
type Options struct {
	// Registry is the counter registry samples derive from (required). The
	// Recorder registers its /control counters here.
	Registry *counters.Registry
	// MaxWorkers is the machine worker ceiling (required, >= 1).
	MaxWorkers int
	// Mode selects actuate (default) or advisory operation.
	Mode Mode
	// Actuators are the runtime knobs; nil members disable that action kind.
	Actuators Actuators
	// LogCapacity bounds the Recorder's decision log (default 128).
	LogCapacity int
}

// hintMaxObservations is the guardrail on externally pushed grain hints: a
// controller that has already consumed this many local observations has live
// evidence of its own and vetoes the hint.
const hintMaxObservations = 3

// Engine is the control plane core: it turns counter samples into interval
// metrics, runs policies over them, and routes the resulting actions to
// actuators — the runtime's worker throttle, a scalar grain knob, and any
// number of registered per-kind adaptive grain controllers.
type Engine struct {
	mu         sync.Mutex
	reg        *counters.Registry
	maxWorkers int
	mode       Mode
	act        Actuators
	policies   []Policy
	grains     map[string]*adaptive.Controller
	rec        *Recorder

	prev     counters.Snapshot
	prevTime time.Time
	steps    uint64
}

// New builds an engine over the registry of a running runtime.
func New(opts Options) (*Engine, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("policyengine: nil registry")
	}
	if opts.MaxWorkers < 1 {
		return nil, fmt.Errorf("policyengine: maxWorkers = %d", opts.MaxWorkers)
	}
	mode, err := ParseMode(string(opts.Mode))
	if err != nil {
		return nil, err
	}
	return &Engine{
		reg:        opts.Registry,
		maxWorkers: opts.MaxWorkers,
		mode:       mode,
		act:        opts.Actuators,
		grains:     map[string]*adaptive.Controller{},
		rec:        NewRecorder(opts.Registry, opts.LogCapacity),
		prev:       opts.Registry.Snapshot(),
		prevTime:   time.Now(),
	}, nil
}

// Mode reports whether the engine actuates or only advises.
func (e *Engine) Mode() Mode { return e.mode }

// Decisions returns a copy of the decision log, oldest first.
func (e *Engine) Decisions() []Decision { return e.rec.Log() }

// Steps reports how many samples the engine has consumed.
func (e *Engine) Steps() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.steps
}

// AddPolicy registers a policy; policies run in registration order and
// later actions win on conflicting knobs.
func (e *Engine) AddPolicy(p Policy) {
	e.mu.Lock()
	e.policies = append(e.policies, p)
	e.mu.Unlock()
}

// RegisterGrain hands a per-kind adaptive grain controller to the engine;
// the engine becomes its owner, policies see its grain in Sample.Grains,
// and actions carrying GrainKind actuate it.
func (e *Engine) RegisterGrain(kind string, ctl *adaptive.Controller) {
	e.mu.Lock()
	e.grains[kind] = ctl
	e.mu.Unlock()
}

// Grain returns the registered controller's current grain, or 0 if the kind
// is unknown.
func (e *Engine) Grain(kind string) int {
	e.mu.Lock()
	ctl := e.grains[kind]
	e.mu.Unlock()
	if ctl == nil {
		return 0
	}
	return ctl.Grain()
}

// Grains returns the current grain of every registered kind.
func (e *Engine) Grains() map[string]int {
	e.mu.Lock()
	ctls := make(map[string]*adaptive.Controller, len(e.grains))
	for k, c := range e.grains {
		ctls[k] = c
	}
	e.mu.Unlock()
	out := make(map[string]int, len(ctls))
	for k, c := range ctls {
		out[k] = c.Grain()
	}
	return out
}

// GrainKinds returns the registered kinds, sorted.
func (e *Engine) GrainKinds() []string {
	e.mu.Lock()
	kinds := make([]string, 0, len(e.grains))
	for k := range e.grains {
		kinds = append(kinds, k)
	}
	e.mu.Unlock()
	sort.Strings(kinds)
	return kinds
}

// GrainStats reports the registered controller's observation and decision
// counts; ok is false for unknown kinds.
func (e *Engine) GrainStats(kind string) (observations, kept, grown, shrunk int, ok bool) {
	e.mu.Lock()
	ctl := e.grains[kind]
	e.mu.Unlock()
	if ctl == nil {
		return 0, 0, 0, 0, false
	}
	observations, kept, grown, shrunk = ctl.Stats()
	return observations, kept, grown, shrunk, true
}

// ObserveGrain feeds one per-job observation into the kind's controller and
// returns the new grain and the decision taken. This is the fast per-job
// feedback edge of the loop; it actuates in both modes because it is the
// controller's own convergence walk, not an external override. Grow/shrink
// moves are recorded in the decision log.
func (e *Engine) ObserveGrain(kind string, obs adaptive.Observation) (int, adaptive.Decision) {
	e.mu.Lock()
	ctl := e.grains[kind]
	e.mu.Unlock()
	if ctl == nil {
		return 0, adaptive.Keep
	}
	grain, dec := ctl.Observe(obs)
	if dec != adaptive.Keep {
		e.rec.Record(Decision{
			At:     time.Now(),
			Policy: "adaptive",
			Action: fmt.Sprintf("grain[%s] %s %d -> %d (idle %.0f%%)", kind, dec, obs.PartitionSize, grain, obs.IdleRate*100),
			Mode:   DecisionActuated,
		})
	}
	return grain, dec
}

// ApplyHint applies an externally pushed grain (a mesh consensus hint) to
// the kind's controller, guarded so remote advice never overrides live local
// evidence: the hint is vetoed when the controller has already consumed
// hintMaxObservations observations, and merely recorded under ModeAdvisory.
// It returns whether the hint actuated and, if not, why.
func (e *Engine) ApplyHint(kind string, grain int, source string) (bool, string) {
	e.mu.Lock()
	ctl := e.grains[kind]
	mode := e.mode
	e.mu.Unlock()
	desc := fmt.Sprintf("hint[%s] grain -> %d (%s)", kind, grain, source)
	record := func(m, veto string) {
		e.rec.Record(Decision{At: time.Now(), Policy: "hint", Action: desc, Mode: m, Veto: veto})
	}
	switch {
	case ctl == nil:
		record(DecisionVetoed, "unknown grain kind")
		return false, "unknown grain kind"
	case grain < 1:
		record(DecisionVetoed, "invalid grain")
		return false, "invalid grain"
	case mode != ModeActuate:
		record(DecisionAdvisory, "")
		return false, "control_mode=advisory"
	}
	if n := ctl.Observations(); n >= hintMaxObservations {
		reason := fmt.Sprintf("local controller already steering (%d observations)", n)
		record(DecisionVetoed, reason)
		return false, reason
	}
	applied := ctl.SetGrain(grain)
	e.rec.Record(Decision{
		At:     time.Now(),
		Policy: "hint",
		Action: fmt.Sprintf("hint[%s] grain -> %d (%s, clamped %d)", kind, grain, source, applied),
		Mode:   DecisionActuated,
	})
	return true, ""
}

// sample derives the interval metrics between the previous sample and ts.
func (e *Engine) sample(ts telemetry.Sample) Sample {
	d := ts.Values.Sub(e.prev)
	elapsed := ts.At.Sub(e.prevTime)
	e.prev, e.prevTime = ts.Values, ts.At

	s := Sample{
		At:         ts.At,
		Tasks:      d.Get(counters.CountCumulative),
		Phases:     d.Get(counters.CountCumulativePhases),
		MaxWorkers: e.maxWorkers,
		Elapsed:    elapsed,
	}
	if f := d.Get(counters.TimeFuncTotal); f > 0 {
		ir := (f - d.Get(counters.TimeExecTotal)) / f
		if ir < 0 {
			ir = 0
		}
		if ir > 1 {
			ir = 1
		}
		s.IdleRate = ir
	}
	if acc := d.Get(counters.PendingAccesses); acc > 0 {
		s.PendingMissRate = d.Get(counters.PendingMisses) / acc
	}
	if e.act.ActiveWorkers != nil {
		s.ActiveWorkers = e.act.ActiveWorkers()
	} else {
		s.ActiveWorkers = e.maxWorkers
	}
	if e.act.Grain != nil {
		s.Grain = e.act.Grain()
	}
	if len(e.grains) > 0 {
		s.Grains = make(map[string]int, len(e.grains))
		for k, c := range e.grains {
			s.Grains[k] = c.Grain()
		}
	}
	return s
}

// ObserveSample consumes one telemetry sample: it derives the interval
// metrics since the previous sample, evaluates every policy, and applies
// (ModeActuate) or records (ModeAdvisory) the resulting actions. This is
// the single sample→decide→actuate path; wire it to a telemetry.Sampler's
// OnSample hook for live use.
func (e *Engine) ObserveSample(ts telemetry.Sample) (Sample, []Action) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.sample(ts)
	e.steps++
	var applied []Action
	for _, p := range e.policies {
		for _, a := range p.Evaluate(s) {
			e.applyLocked(s.At, p.Name(), a)
			applied = append(applied, a)
		}
	}
	return s, applied
}

// applyLocked routes one action to its actuator under the engine mode,
// recording the outcome. Callers hold e.mu.
func (e *Engine) applyLocked(at time.Time, policy string, a Action) {
	record := func(mode, veto string) {
		desc := a.Note
		if desc == "" {
			desc = fmt.Sprintf("grain=%d workers=%d", a.SetGrain, a.SetActiveWorkers)
		}
		e.rec.Record(Decision{At: at, Policy: policy, Action: desc, Mode: mode, Veto: veto})
	}
	if a.SetGrain > 0 {
		switch {
		case e.mode != ModeActuate:
			record(DecisionAdvisory, "")
		case a.GrainKind != "":
			if ctl := e.grains[a.GrainKind]; ctl != nil {
				ctl.SetGrain(a.SetGrain)
				record(DecisionActuated, "")
			} else {
				record(DecisionVetoed, "unknown grain kind "+a.GrainKind)
			}
		case e.act.SetGrain != nil:
			e.act.SetGrain(a.SetGrain)
			record(DecisionActuated, "")
		default:
			record(DecisionVetoed, "no grain actuator")
		}
	}
	if a.SetActiveWorkers > 0 {
		switch {
		case e.mode != ModeActuate:
			record(DecisionAdvisory, "")
		case e.act.SetActiveWorkers != nil:
			e.act.SetActiveWorkers(a.SetActiveWorkers)
			record(DecisionActuated, "")
		default:
			record(DecisionVetoed, "no throttle actuator")
		}
	}
}

// Step performs one cycle over a fresh registry snapshot — the synchronous
// entry point for tests, examples, and callers without a telemetry sampler.
func (e *Engine) Step() (Sample, []Action) {
	return e.ObserveSample(telemetry.Sample{At: time.Now(), Values: e.reg.Snapshot()})
}
