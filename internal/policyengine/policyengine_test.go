package policyengine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskgrain/internal/adaptive"
	"taskgrain/internal/counters"
	"taskgrain/internal/taskrt"
)

// fakeRegistry builds a registry with settable raw counters.
type fakeCounters struct {
	reg                  *counters.Registry
	exec, fn, tasks, ph  *counters.Cumulative
	pendingAcc, pendingM *counters.Cumulative
}

func newFake(t *testing.T) *fakeCounters {
	t.Helper()
	f := &fakeCounters{
		reg:        counters.NewRegistry(),
		exec:       counters.NewCumulative(counters.TimeExecTotal),
		fn:         counters.NewCumulative(counters.TimeFuncTotal),
		tasks:      counters.NewCumulative(counters.CountCumulative),
		ph:         counters.NewCumulative(counters.CountCumulativePhases),
		pendingAcc: counters.NewCumulative(counters.PendingAccesses),
		pendingM:   counters.NewCumulative(counters.PendingMisses),
	}
	for _, c := range []counters.Counter{f.exec, f.fn, f.tasks, f.ph, f.pendingAcc, f.pendingM} {
		f.reg.MustRegister(c)
	}
	return f
}

// interval simulates one interval with the given idle rate and task count.
func (f *fakeCounters) interval(idle float64, tasks int64) {
	const fnNs = 1_000_000
	f.fn.Add(fnNs)
	f.exec.Add(int64(float64(fnNs) * (1 - idle)))
	f.tasks.Add(tasks)
	f.ph.Add(tasks)
	f.pendingAcc.Add(tasks * 2)
	f.pendingM.Add(tasks)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4, Actuators{}); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(counters.NewRegistry(), 0, Actuators{}); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestSampleDerivation(t *testing.T) {
	f := newFake(t)
	var active atomic.Int64
	active.Store(4)
	e, err := New(f.reg, 8, Actuators{
		ActiveWorkers: func() int { return int(active.Load()) },
		Grain:         func() int { return 1234 },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.interval(0.25, 100)
	s, actions := e.Step()
	if len(actions) != 0 {
		t.Fatalf("no policies but actions = %v", actions)
	}
	if s.IdleRate < 0.24 || s.IdleRate > 0.26 {
		t.Errorf("idle = %v", s.IdleRate)
	}
	if s.Tasks != 100 || s.Phases != 100 {
		t.Errorf("tasks/phases = %v/%v", s.Tasks, s.Phases)
	}
	if s.PendingMissRate != 0.5 {
		t.Errorf("miss rate = %v", s.PendingMissRate)
	}
	if s.ActiveWorkers != 4 || s.MaxWorkers != 8 || s.Grain != 1234 {
		t.Errorf("sample = %+v", s)
	}
	// Second step over an empty interval: zero tasks, zero idle.
	s2, _ := e.Step()
	if s2.Tasks != 0 || s2.IdleRate != 0 {
		t.Errorf("empty interval sample = %+v", s2)
	}
}

func TestThrottlePolicyDirections(t *testing.T) {
	p := &ThrottlePolicy{}
	// High idle → throttle down.
	acts := p.Evaluate(Sample{IdleRate: 0.9, ActiveWorkers: 8, MaxWorkers: 8})
	if len(acts) != 1 || acts[0].SetActiveWorkers != 7 {
		t.Fatalf("down actions = %+v", acts)
	}
	// Low idle → release.
	acts = p.Evaluate(Sample{IdleRate: 0.05, ActiveWorkers: 4, MaxWorkers: 8})
	if len(acts) != 1 || acts[0].SetActiveWorkers != 5 {
		t.Fatalf("up actions = %+v", acts)
	}
	// In band → nothing.
	if acts = p.Evaluate(Sample{IdleRate: 0.4, ActiveWorkers: 4, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("band actions = %+v", acts)
	}
	// Floors and ceilings.
	if acts = p.Evaluate(Sample{IdleRate: 0.9, ActiveWorkers: 1, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("floor actions = %+v", acts)
	}
	if acts = p.Evaluate(Sample{IdleRate: 0.05, ActiveWorkers: 8, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("ceiling actions = %+v", acts)
	}
}

func TestThrottleConfigValidate(t *testing.T) {
	if err := (ThrottleConfig{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ThrottleConfig{LowIdle: 0.7, HighIdle: 0.6}).Validate(); err == nil {
		t.Error("inverted band accepted")
	}
	if err := (ThrottleConfig{HighIdle: 1.5}).Validate(); err == nil {
		t.Error("HighIdle >= 1 accepted")
	}
}

func TestGrainPolicy(t *testing.T) {
	tuner, err := adaptive.New(adaptive.Config{MinPartition: 100, MaxPartition: 100000})
	if err != nil {
		t.Fatal(err)
	}
	p := &GrainPolicy{Tuner: tuner}
	// Overhead wall with plenty of slack → grow.
	acts := p.Evaluate(Sample{IdleRate: 0.9, Tasks: 10000, Grain: 1000, ActiveWorkers: 8})
	if len(acts) != 1 || acts[0].SetGrain != 2000 {
		t.Fatalf("actions = %+v", acts)
	}
	// No grain actuator wired → no action.
	if acts = p.Evaluate(Sample{IdleRate: 0.9, Tasks: 10000, Grain: 0}); len(acts) != 0 {
		t.Fatalf("grainless actions = %+v", acts)
	}
	// In band → no action.
	if acts = p.Evaluate(Sample{IdleRate: 0.1, Tasks: 10000, Grain: 1000, ActiveWorkers: 8}); len(acts) != 0 {
		t.Fatalf("band actions = %+v", acts)
	}
}

func TestEngineAppliesActions(t *testing.T) {
	f := newFake(t)
	var grain atomic.Int64
	grain.Store(1000)
	var workers atomic.Int64
	workers.Store(8)
	e, err := New(f.reg, 8, Actuators{
		SetGrain:         func(g int) { grain.Store(int64(g)) },
		Grain:            func() int { return int(grain.Load()) },
		SetActiveWorkers: func(n int) { workers.Store(int64(n)) },
		ActiveWorkers:    func() int { return int(workers.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tuner, _ := adaptive.New(adaptive.Config{MinPartition: 100, MaxPartition: 1 << 20})
	e.AddPolicy(&GrainPolicy{Tuner: tuner})
	e.AddPolicy(&ThrottlePolicy{})

	// Interval deep in the overhead wall: grain should grow AND the
	// throttle should pull a worker (idle 0.9 > 0.6).
	f.interval(0.9, 10000)
	_, acts := e.Step()
	if grain.Load() != 2000 {
		t.Fatalf("grain = %d after actions %+v", grain.Load(), acts)
	}
	if workers.Load() != 7 {
		t.Fatalf("workers = %d after actions %+v", workers.Load(), acts)
	}
	if len(acts) != 2 {
		t.Fatalf("actions = %+v", acts)
	}
	for _, a := range acts {
		if a.Note == "" {
			t.Error("action without note")
		}
	}
}

func TestEngineRunStop(t *testing.T) {
	f := newFake(t)
	e, err := New(f.reg, 4, Actuators{})
	if err != nil {
		t.Fatal(err)
	}
	var steps atomic.Int64
	e.AddPolicy(PolicyFunc{PolicyName: "count", Fn: func(Sample) []Action {
		steps.Add(1)
		return nil
	}})
	e.Run(time.Millisecond)
	e.Run(time.Millisecond) // double Run is a no-op
	deadline := time.After(2 * time.Second)
	for steps.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("engine did not step")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	e.Stop()
	e.Stop() // double Stop is safe
	after := steps.Load()
	time.Sleep(10 * time.Millisecond)
	if steps.Load() != after {
		t.Fatal("engine stepped after Stop")
	}
}

func TestEngineWithLiveRuntimeThrottles(t *testing.T) {
	// Integration: an idle runtime (workers spinning with no work) must get
	// throttled down by the policy engine.
	rt := taskrt.New(taskrt.WithWorkers(4))
	rt.Start()
	defer rt.Shutdown()
	e, err := New(rt.Counters(), 4, Actuators{
		SetActiveWorkers: rt.SetActiveWorkers,
		ActiveWorkers:    rt.ActiveWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.AddPolicy(&ThrottlePolicy{Config: ThrottleConfig{HighIdle: 0.5, LowIdle: 0.01}})
	// Let the idle runtime accrue pure scheduler-loop time, then step.
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		e.Step()
	}
	if rt.ActiveWorkers() >= 4 {
		t.Fatalf("idle runtime not throttled: %d workers", rt.ActiveWorkers())
	}
	// Work still completes at the throttled level.
	var wg sync.WaitGroup
	wg.Add(100)
	for i := 0; i < 100; i++ {
		rt.Spawn(func(*taskrt.Context) { wg.Done() })
	}
	wg.Wait()
}
