package policyengine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskgrain/internal/adaptive"
	"taskgrain/internal/counters"
	"taskgrain/internal/taskrt"
	"taskgrain/internal/telemetry"
)

// fakeRegistry builds a registry with settable raw counters.
type fakeCounters struct {
	reg                  *counters.Registry
	exec, fn, tasks, ph  *counters.Cumulative
	pendingAcc, pendingM *counters.Cumulative
}

func newFake(t *testing.T) *fakeCounters {
	t.Helper()
	f := &fakeCounters{
		reg:        counters.NewRegistry(),
		exec:       counters.NewCumulative(counters.TimeExecTotal),
		fn:         counters.NewCumulative(counters.TimeFuncTotal),
		tasks:      counters.NewCumulative(counters.CountCumulative),
		ph:         counters.NewCumulative(counters.CountCumulativePhases),
		pendingAcc: counters.NewCumulative(counters.PendingAccesses),
		pendingM:   counters.NewCumulative(counters.PendingMisses),
	}
	for _, c := range []counters.Counter{f.exec, f.fn, f.tasks, f.ph, f.pendingAcc, f.pendingM} {
		f.reg.MustRegister(c)
	}
	return f
}

// interval simulates one interval with the given idle rate and task count.
func (f *fakeCounters) interval(idle float64, tasks int64) {
	const fnNs = 1_000_000
	f.fn.Add(fnNs)
	f.exec.Add(int64(float64(fnNs) * (1 - idle)))
	f.tasks.Add(tasks)
	f.ph.Add(tasks)
	f.pendingAcc.Add(tasks * 2)
	f.pendingM.Add(tasks)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{MaxWorkers: 4}); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(Options{Registry: counters.NewRegistry()}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := New(Options{Registry: counters.NewRegistry(), MaxWorkers: 4, Mode: "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"": ModeActuate, "actuate": ModeActuate, "advisory": ModeAdvisory} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("passive"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestSampleDerivation(t *testing.T) {
	f := newFake(t)
	var active atomic.Int64
	active.Store(4)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 8, Actuators: Actuators{
		ActiveWorkers: func() int { return int(active.Load()) },
		Grain:         func() int { return 1234 },
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.interval(0.25, 100)
	s, actions := e.Step()
	if len(actions) != 0 {
		t.Fatalf("no policies but actions = %v", actions)
	}
	if s.IdleRate < 0.24 || s.IdleRate > 0.26 {
		t.Errorf("idle = %v", s.IdleRate)
	}
	if s.Tasks != 100 || s.Phases != 100 {
		t.Errorf("tasks/phases = %v/%v", s.Tasks, s.Phases)
	}
	if s.PendingMissRate != 0.5 {
		t.Errorf("miss rate = %v", s.PendingMissRate)
	}
	if s.ActiveWorkers != 4 || s.MaxWorkers != 8 || s.Grain != 1234 {
		t.Errorf("sample = %+v", s)
	}
	if s.At.IsZero() {
		t.Error("sample has no timestamp")
	}
	// Second step over an empty interval: zero tasks, zero idle.
	s2, _ := e.Step()
	if s2.Tasks != 0 || s2.IdleRate != 0 {
		t.Errorf("empty interval sample = %+v", s2)
	}
}

// TestEngineObservesSamplerSamples drives the engine the way the daemons
// do: from the telemetry sampler's OnSample hook, so the telemetry ring and
// the policy loop share one sampling path and one set of timestamps.
func TestEngineObservesSamplerSamples(t *testing.T) {
	f := newFake(t)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last atomic.Value // Sample
	e.AddPolicy(PolicyFunc{PolicyName: "probe", Fn: func(s Sample) []Action {
		last.Store(s)
		return nil
	}})
	sampler := telemetry.NewSampler(f.reg, telemetry.Config{
		Interval: time.Hour, // manual SampleNow only
		OnSample: func(ts telemetry.Sample) { e.ObserveSample(ts) },
	})
	f.interval(0.50, 40)
	sampler.SampleNow()
	s, ok := last.Load().(Sample)
	if !ok {
		t.Fatal("policy never saw a sample")
	}
	if s.Tasks != 40 || s.IdleRate < 0.49 || s.IdleRate > 0.51 {
		t.Fatalf("sampler-sourced sample = %+v", s)
	}
	if got, ok := sampler.Ring().Latest(); !ok || !s.At.Equal(got.At) {
		t.Fatalf("engine timestamp %v != ring timestamp %v (ok=%v)", s.At, got.At, ok)
	}
	if e.Steps() != 1 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

func TestThrottlePolicyDirections(t *testing.T) {
	p := &ThrottlePolicy{}
	// High idle → throttle down.
	acts := p.Evaluate(Sample{IdleRate: 0.9, ActiveWorkers: 8, MaxWorkers: 8})
	if len(acts) != 1 || acts[0].SetActiveWorkers != 7 {
		t.Fatalf("down actions = %+v", acts)
	}
	// Low idle → release.
	acts = p.Evaluate(Sample{IdleRate: 0.05, ActiveWorkers: 4, MaxWorkers: 8})
	if len(acts) != 1 || acts[0].SetActiveWorkers != 5 {
		t.Fatalf("up actions = %+v", acts)
	}
	// In band → nothing.
	if acts = p.Evaluate(Sample{IdleRate: 0.4, ActiveWorkers: 4, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("band actions = %+v", acts)
	}
	// Floors and ceilings.
	if acts = p.Evaluate(Sample{IdleRate: 0.9, ActiveWorkers: 1, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("floor actions = %+v", acts)
	}
	if acts = p.Evaluate(Sample{IdleRate: 0.05, ActiveWorkers: 8, MaxWorkers: 8}); len(acts) != 0 {
		t.Fatalf("ceiling actions = %+v", acts)
	}
}

func TestThrottleConfigValidate(t *testing.T) {
	if err := (ThrottleConfig{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ThrottleConfig{LowIdle: 0.7, HighIdle: 0.6}).Validate(); err == nil {
		t.Error("inverted band accepted")
	}
	if err := (ThrottleConfig{HighIdle: 1.5}).Validate(); err == nil {
		t.Error("HighIdle >= 1 accepted")
	}
}

func TestGrainPolicy(t *testing.T) {
	tuner, err := adaptive.New(adaptive.Config{MinPartition: 100, MaxPartition: 100000})
	if err != nil {
		t.Fatal(err)
	}
	p := &GrainPolicy{Tuner: tuner}
	// Overhead wall with plenty of slack → grow.
	acts := p.Evaluate(Sample{IdleRate: 0.9, Tasks: 10000, Grain: 1000, ActiveWorkers: 8})
	if len(acts) != 1 || acts[0].SetGrain != 2000 {
		t.Fatalf("actions = %+v", acts)
	}
	// No grain actuator wired → no action.
	if acts = p.Evaluate(Sample{IdleRate: 0.9, Tasks: 10000, Grain: 0}); len(acts) != 0 {
		t.Fatalf("grainless actions = %+v", acts)
	}
	// In band → no action.
	if acts = p.Evaluate(Sample{IdleRate: 0.1, Tasks: 10000, Grain: 1000, ActiveWorkers: 8}); len(acts) != 0 {
		t.Fatalf("band actions = %+v", acts)
	}
}

func TestEngineAppliesActions(t *testing.T) {
	f := newFake(t)
	var grain atomic.Int64
	grain.Store(1000)
	var workers atomic.Int64
	workers.Store(8)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 8, Actuators: Actuators{
		SetGrain:         func(g int) { grain.Store(int64(g)) },
		Grain:            func() int { return int(grain.Load()) },
		SetActiveWorkers: func(n int) { workers.Store(int64(n)) },
		ActiveWorkers:    func() int { return int(workers.Load()) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	tuner, _ := adaptive.New(adaptive.Config{MinPartition: 100, MaxPartition: 1 << 20})
	e.AddPolicy(&GrainPolicy{Tuner: tuner})
	e.AddPolicy(&ThrottlePolicy{})

	// Interval deep in the overhead wall: grain should grow AND the
	// throttle should pull a worker (idle 0.9 > 0.6).
	f.interval(0.9, 10000)
	_, acts := e.Step()
	if grain.Load() != 2000 {
		t.Fatalf("grain = %d after actions %+v", grain.Load(), acts)
	}
	if workers.Load() != 7 {
		t.Fatalf("workers = %d after actions %+v", workers.Load(), acts)
	}
	if len(acts) != 2 {
		t.Fatalf("actions = %+v", acts)
	}
	for _, a := range acts {
		if a.Note == "" {
			t.Error("action without note")
		}
	}
	// Both decisions actuated and landed in the log and counters.
	log := e.Decisions()
	if len(log) != 2 {
		t.Fatalf("decision log = %+v", log)
	}
	for _, d := range log {
		if d.Mode != DecisionActuated || d.At.IsZero() {
			t.Errorf("decision = %+v", d)
		}
	}
	snap := f.reg.Snapshot()
	if snap.Get(ControlDecisions) != 2 || snap.Get(ControlActuations) != 2 || snap.Get(ControlVetoes) != 0 {
		t.Fatalf("control counters = %v/%v/%v",
			snap.Get(ControlDecisions), snap.Get(ControlActuations), snap.Get(ControlVetoes))
	}
}

// TestModeAdvisoryRecordsWithoutActuating pins the control_mode=advisory
// contract: decisions are logged and counted but no actuator moves.
func TestModeAdvisoryRecordsWithoutActuating(t *testing.T) {
	f := newFake(t)
	var workers atomic.Int64
	workers.Store(8)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 8, Mode: ModeAdvisory, Actuators: Actuators{
		SetActiveWorkers: func(n int) { workers.Store(int64(n)) },
		ActiveWorkers:    func() int { return int(workers.Load()) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.AddPolicy(&ThrottlePolicy{})
	f.interval(0.9, 10000)
	_, acts := e.Step()
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
	if workers.Load() != 8 {
		t.Fatalf("advisory mode actuated: workers = %d", workers.Load())
	}
	log := e.Decisions()
	if len(log) != 1 || log[0].Mode != DecisionAdvisory {
		t.Fatalf("decision log = %+v", log)
	}
	snap := f.reg.Snapshot()
	if snap.Get(ControlDecisions) != 1 || snap.Get(ControlActuations) != 0 {
		t.Fatalf("control counters = %v/%v", snap.Get(ControlDecisions), snap.Get(ControlActuations))
	}
}

// TestEngineGrainControllers covers the engine-owned per-kind controllers:
// registration, per-job observation feedback, and hint guardrails.
func TestEngineGrainControllers(t *testing.T) {
	f := newFake(t)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := adaptive.NewController(adaptive.Config{MinPartition: 64, MaxPartition: 1 << 20}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterGrain("stencil1d", ctl)

	if g := e.Grain("stencil1d"); g != 10000 {
		t.Fatalf("grain = %d", g)
	}
	if g := e.Grain("nope"); g != 0 {
		t.Fatalf("unknown kind grain = %d", g)
	}
	if kinds := e.GrainKinds(); len(kinds) != 1 || kinds[0] != "stencil1d" {
		t.Fatalf("kinds = %v", kinds)
	}

	// A fresh controller accepts a hint, clamped to its bounds.
	applied, reason := e.ApplyHint("stencil1d", 4096, "test")
	if !applied || reason != "" {
		t.Fatalf("hint rejected: %v %q", applied, reason)
	}
	if g := e.Grain("stencil1d"); g != 4096 {
		t.Fatalf("grain after hint = %d", g)
	}
	if applied, _ = e.ApplyHint("stencil1d", 1, "test"); !applied {
		t.Fatal("clamping hint rejected")
	}
	if g := e.Grain("stencil1d"); g != 64 {
		t.Fatalf("grain not clamped to MinPartition: %d", g)
	}
	if applied, _ = e.ApplyHint("bogus", 100, "test"); applied {
		t.Fatal("unknown kind hint applied")
	}

	// Per-job observations steer and are recorded; after enough of them the
	// controller has live evidence and vetoes further hints.
	for i := 0; i < hintMaxObservations; i++ {
		e.ObserveGrain("stencil1d", adaptive.Observation{
			PartitionSize: e.Grain("stencil1d"), IdleRate: 0.9, Tasks: 10000, Cores: 8,
		})
	}
	obs, _, grown, _, ok := e.GrainStats("stencil1d")
	if !ok || obs != hintMaxObservations || grown == 0 {
		t.Fatalf("stats = obs %d grown %d ok %v", obs, grown, ok)
	}
	applied, reason = e.ApplyHint("stencil1d", 512, "test")
	if applied || !strings.Contains(reason, "observations") {
		t.Fatalf("hint not vetoed after local convergence: %v %q", applied, reason)
	}
	snap := f.reg.Snapshot()
	if snap.Get(ControlVetoes) < 2 { // unknown-kind + stale-hint vetoes
		t.Fatalf("vetoes = %v", snap.Get(ControlVetoes))
	}
}

// TestWatchdogPolicyEmitsGrainActions pins the watchdog→engine edge: a
// pinned idle-rate with task flow becomes per-kind grow actions, a pinned
// idle-rate without flow becomes shrink actions, and the cooldown spaces
// successive moves.
func TestWatchdogPolicyEmitsGrainActions(t *testing.T) {
	mk := func(flowPerSample float64) (*WatchdogPolicy, *telemetry.Ring, time.Time) {
		ring := telemetry.NewRing(16)
		base := time.Now()
		var flow float64
		for i := 0; i < 5; i++ {
			flow += flowPerSample
			ring.Push(telemetry.Sample{
				At: base.Add(time.Duration(i) * time.Second),
				Values: counters.Snapshot{
					"/server/idle-rate":         0.95,
					"/server/tasks/inflight":    1,
					"/threads/count/cumulative": flow,
				},
			})
		}
		w := telemetry.NewWatchdog(telemetry.WatchdogConfig{
			Subject:     "test",
			IdleCounter: "/server/idle-rate",
			FlowCounter: "/threads/count/cumulative",
			BusyCounter: "/server/tasks/inflight",
			Window:      10 * time.Second,
			FlowFloor:   10,
		})
		p := &WatchdogPolicy{Watchdog: w, Ring: func() *telemetry.Ring { return ring }, Cooldown: 10 * time.Second}
		return p, ring, base.Add(4 * time.Second)
	}

	// High flow → overhead wall → grow every kind, sorted.
	p, _, at := mk(1000)
	acts := p.Evaluate(Sample{At: at, Grains: map[string]int{"fibonacci": 20, "stencil1d": 1000}})
	if len(acts) != 2 {
		t.Fatalf("actions = %+v", acts)
	}
	if acts[0].GrainKind != "fibonacci" || acts[0].SetGrain != 40 ||
		acts[1].GrainKind != "stencil1d" || acts[1].SetGrain != 2000 {
		t.Fatalf("grow actions = %+v", acts)
	}
	// Cooldown: the same pinned alert must not fire again immediately.
	if again := p.Evaluate(Sample{At: at.Add(time.Second), Grains: map[string]int{"stencil1d": 2000}}); len(again) != 0 {
		t.Fatalf("cooldown violated: %+v", again)
	}
	// After the cooldown it may move again.
	if later := p.Evaluate(Sample{At: at.Add(11 * time.Second), Grains: map[string]int{"stencil1d": 2000}}); len(later) != 1 || later[0].SetGrain != 4000 {
		t.Fatalf("post-cooldown actions = %+v", later)
	}

	// Near-zero flow → starvation wall → shrink.
	p2, _, at2 := mk(0.5)
	acts = p2.Evaluate(Sample{At: at2, Grains: map[string]int{"stencil1d": 1000}})
	if len(acts) != 1 || acts[0].SetGrain != 500 {
		t.Fatalf("shrink actions = %+v", acts)
	}

	// Grain floor: a shrink at 1 emits nothing rather than a no-op.
	p3, _, at3 := mk(0.5)
	if acts = p3.Evaluate(Sample{At: at3, Grains: map[string]int{"fibonacci": 1}}); len(acts) != 0 {
		t.Fatalf("floor actions = %+v", acts)
	}
}

// TestEngineWatchdogActuatesGrain wires watchdog, engine, and a registered
// controller together: the alert's grow verdict must move the controller's
// grain through the one engine path.
func TestEngineWatchdogActuatesGrain(t *testing.T) {
	f := newFake(t)
	e, err := New(Options{Registry: f.reg, MaxWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctl, _ := adaptive.NewController(adaptive.Config{MinPartition: 64, MaxPartition: 1 << 20}, 1000)
	e.RegisterGrain("stencil1d", ctl)

	ring := telemetry.NewRing(16)
	base := time.Now()
	for i := 0; i < 5; i++ {
		ring.Push(telemetry.Sample{
			At: base.Add(time.Duration(i) * time.Second),
			Values: counters.Snapshot{
				"/server/idle-rate":         0.95,
				"/server/tasks/inflight":    1,
				"/threads/count/cumulative": float64(i) * 1000,
			},
		})
	}
	w := telemetry.NewWatchdog(telemetry.WatchdogConfig{
		Subject:     "test",
		IdleCounter: "/server/idle-rate",
		FlowCounter: "/threads/count/cumulative",
		BusyCounter: "/server/tasks/inflight",
		Window:      10 * time.Second,
	})
	e.AddPolicy(&WatchdogPolicy{Watchdog: w, Ring: func() *telemetry.Ring { return ring }})

	_, acts := e.ObserveSample(telemetry.Sample{At: base.Add(4 * time.Second), Values: f.reg.Snapshot()})
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
	if g := e.Grain("stencil1d"); g != 2000 {
		t.Fatalf("watchdog verdict did not actuate: grain = %d", g)
	}
	log := e.Decisions()
	if len(log) != 1 || log[0].Policy != "watchdog" || log[0].Mode != DecisionActuated {
		t.Fatalf("decision log = %+v", log)
	}
}

func TestEngineWithLiveRuntimeThrottles(t *testing.T) {
	// Integration: an idle runtime (workers spinning with no work) must get
	// throttled down by the policy engine.
	rt := taskrt.New(taskrt.WithWorkers(4))
	rt.Start()
	defer rt.Shutdown()
	e, err := New(Options{Registry: rt.Counters(), MaxWorkers: 4, Actuators: Actuators{
		SetActiveWorkers: rt.SetActiveWorkers,
		ActiveWorkers:    rt.ActiveWorkers,
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.AddPolicy(&ThrottlePolicy{Config: ThrottleConfig{HighIdle: 0.5, LowIdle: 0.01}})
	// Let the idle runtime accrue pure scheduler-loop time, then step.
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		e.Step()
	}
	if rt.ActiveWorkers() >= 4 {
		t.Fatalf("idle runtime not throttled: %d workers", rt.ActiveWorkers())
	}
	// Work still completes at the throttled level.
	var wg sync.WaitGroup
	wg.Add(100)
	for i := 0; i < 100; i++ {
		rt.Spawn(func(*taskrt.Context) { wg.Done() })
	}
	wg.Wait()
}
